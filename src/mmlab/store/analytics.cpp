#include "mmlab/store/analytics.hpp"

#include <algorithm>
#include <utility>

#include "mmlab/core/cell_fold.hpp"
#include "mmlab/geo/grid_index.hpp"

namespace mmlab::store {

// Each figure product is a small accumulator over the per-cell fold kernel:
// consume() sees every merged cell (ascending id) with the CellFolder
// already run on it, finish() produces the figure's output.  The standalone
// entry points drive one accumulator per fold; analyze_carrier drives all
// of them off a single fold — same consume() calls in the same order, so
// the mix is bit-identical to the standalone results by construction.
//
// Equivalence to the view path: CellFolder is the one implementation of the
// per-cell products (the view's CarrierAssembler copies its output into the
// span columns), and the fold engine hands over the identical merged
// records in the identical cell order the view builder consumed — so each
// accumulator below mirrors its ColumnarView counterpart line for line,
// with folder slices standing in for spans.

namespace {

struct DiversityAcc {
  std::map<config::ParamKey, std::pair<stats::ValueCounts, std::size_t>> acc;

  void consume(const core::CellFolder& folder) {
    const auto uniq = folder.unique_values();
    for (const auto& slice : folder.keys()) {
      auto& entry = acc[slice.key];
      ++entry.second;
      for (std::uint32_t j = slice.uniq_begin; j < slice.uniq_end; ++j)
        entry.first.add(uniq[j]);
    }
  }

  std::vector<core::ParamDiversity> finish(
      std::optional<spectrum::Rat> rat) const {
    std::vector<core::ParamDiversity> out;
    out.reserve(acc.size());
    for (const auto& [key, entry] : acc) {
      if (rat && key.rat != *rat) continue;
      out.push_back({key, stats::measure_diversity(entry.first), entry.second});
    }
    std::sort(out.begin(), out.end(),
              [](const core::ParamDiversity& a, const core::ParamDiversity& b) {
                return a.measures.simpson < b.measures.simpson;
              });
    return out;
  }
};

struct DependenceAcc {
  std::map<config::ParamKey, std::map<long, stats::ValueCounts>> acc;

  void consume(const core::CellRecord& rec, const core::CellFolder& folder) {
    if (rec.rat != spectrum::Rat::kLte) return;
    const long f = static_cast<long>(rec.channel);
    const auto uniq = folder.unique_values();
    for (const auto& slice : folder.keys()) {
      if (slice.key.rat != spectrum::Rat::kLte) continue;
      stats::ValueCounts& vc = acc[slice.key][f];
      for (std::uint32_t j = slice.uniq_begin; j < slice.uniq_end; ++j)
        vc.add(uniq[j]);
    }
  }

  std::vector<core::ParamDependence> finish() const {
    std::vector<core::ParamDependence> out;
    out.reserve(acc.size());
    for (const auto& [key, groups] : acc) {
      core::ParamDependence dep;
      dep.key = key;
      dep.zeta_simpson =
          stats::dependence_measure(groups, stats::DiversityMetric::kSimpson);
      dep.zeta_cv =
          stats::dependence_measure(groups, stats::DiversityMetric::kCv);
      out.push_back(dep);
    }
    return out;
  }
};

/// Serving-priority groups (values_grouped by channel) plus the compact
/// per-cell retention the multi-priority minority pass needs: the groups
/// only finalize after the whole fold, so each observing LTE cell keeps its
/// channel and unique priority values (flat, a few bytes per cell).
struct ServingPriorityAcc {
  std::map<long, stats::ValueCounts> groups;
  std::size_t lte_cells = 0;
  std::vector<long> cell_channel;
  std::vector<std::uint32_t> value_begin;
  std::vector<double> values;

  void consume(const core::CellRecord& rec, const core::CellFolder& folder,
               config::ParamKey prio_key) {
    const bool lte = rec.rat == spectrum::Rat::kLte;
    if (lte) ++lte_cells;
    const auto uniq = folder.unique_values(prio_key);
    // values_grouped contract: the factor is only consulted for observing
    // cells, and the channel factor maps non-LTE cells to -1 (dropped).
    if (uniq.empty() || !lte) return;
    const long f = static_cast<long>(rec.channel);
    stats::ValueCounts& vc = groups[f];
    for (const double v : uniq) vc.add(v);
    cell_channel.push_back(f);
    value_begin.push_back(static_cast<std::uint32_t>(values.size()));
    values.insert(values.end(), uniq.begin(), uniq.end());
  }

  double multi_priority_fraction() const {
    std::size_t minority = 0;
    for (std::size_t i = 0; i < cell_channel.size(); ++i) {
      const auto it = groups.find(cell_channel[i]);
      if (it == groups.end() || it->second.richness() <= 1) continue;
      const double mode = it->second.mode();
      const std::size_t begin = value_begin[i];
      const std::size_t end =
          i + 1 < value_begin.size() ? value_begin[i + 1] : values.size();
      for (std::size_t j = begin; j < end; ++j)
        if (values[j] != mode) {
          ++minority;
          break;
        }
    }
    return lte_cells == 0 ? 0.0
                          : static_cast<double>(minority) /
                                static_cast<double>(lte_cells);
  }
};

struct CandidatePriorityAcc {
  std::map<long, stats::ValueCounts> out;

  void consume(const core::CellFolder& folder, config::ParamKey key) {
    const auto* slice = folder.find(key);
    if (!slice) return;
    const auto contexts = folder.ctx_contexts();
    const auto values = folder.ctx_values();
    for (std::uint32_t j = slice->ctx_begin; j < slice->ctx_end; ++j)
      out[static_cast<long>(contexts[j])].add(values[j]);
  }
};

struct CityPriorityAcc {
  std::map<long, stats::ValueCounts> out;

  void consume(const core::CellRecord& rec, const core::CellFolder& folder,
               config::ParamKey key, const std::vector<geo::City>& cities) {
    const auto uniq = folder.unique_values(key);
    if (uniq.empty()) return;
    long f = -1;
    if (rec.rat == spectrum::Rat::kLte) {
      for (const auto& city : cities)
        if (geo::contains(city, rec.position)) {
          f = city.id;
          break;
        }
    }
    if (f < 0) return;
    stats::ValueCounts& vc = out[f];
    for (const double v : uniq) vc.add(v);
  }
};

struct SpatialAcc {
  geo::GridIndex index;
  std::vector<geo::Point> positions;
  std::vector<std::uint32_t> value_begin;
  std::vector<double> values;

  explicit SpatialAcc(double radius_m) : index(radius_m) {}

  void consume(const core::CellRecord& rec, const core::CellFolder& folder,
               config::ParamKey key, const geo::City& city) {
    if (rec.rat != spectrum::Rat::kLte) return;
    if (!geo::contains(city, rec.position)) return;
    index.insert(static_cast<std::uint32_t>(positions.size()), rec.position);
    positions.push_back(rec.position);
    value_begin.push_back(static_cast<std::uint32_t>(values.size()));
    const auto uniq = folder.unique_values(key);
    values.insert(values.end(), uniq.begin(), uniq.end());
  }

  std::vector<double> finish(double radius_m) const {
    std::vector<double> out;
    for (std::size_t i = 0; i < positions.size(); ++i) {
      stats::ValueCounts cluster;
      index.for_each_in_radius(
          positions[i], radius_m, [&](std::uint32_t m) {
            const std::size_t begin = value_begin[m];
            const std::size_t end = m + 1 < value_begin.size()
                                        ? value_begin[m + 1]
                                        : values.size();
            for (std::size_t j = begin; j < end; ++j) cluster.add(values[j]);
          });
      if (cluster.total() >= 2) out.push_back(cluster.simpson_index());
    }
    return out;
  }
};

struct GapsAcc {
  core::MeasurementGaps gaps;

  void consume(const core::CellRecord& rec, const core::CellFolder& folder) {
    if (rec.rat != spectrum::Rat::kLte) return;
    const auto latest = [&](config::ParamKey key) -> std::optional<double> {
      const auto* slice = folder.find(key);
      if (!slice || !slice->has_latest) return std::nullopt;
      return slice->latest;
    };
    const auto intra =
        latest(config::lte_param(config::ParamId::kSIntraSearch));
    const auto nonintra =
        latest(config::lte_param(config::ParamId::kSNonIntraSearch));
    const auto slow =
        latest(config::lte_param(config::ParamId::kThreshServingLow));
    if (intra && nonintra)
      gaps.intra_minus_nonintra.push_back(*intra - *nonintra);
    if (intra && slow) gaps.intra_minus_slow.push_back(*intra - *slow);
    if (nonintra && slow)
      gaps.nonintra_minus_slow.push_back(*nonintra - *slow);
  }
};

/// Drive one carrier fold for either family: the plain full fold when no
/// query was given, the planned fold otherwise.  When the query has no
/// param predicate of its own, `narrow` (the exact keys the caller's
/// accumulator reads; empty = reads everything) becomes the push-down set,
/// so fixed-key products decode only their own values.
Result<FoldStats> fold_for(const DirectFold& direct, const std::string& carrier,
                           const Query* query,
                           std::vector<config::ParamKey> narrow,
                           const DirectFold::CellConsumer& consumer) {
  if (!query) return direct.fold_carrier(carrier, consumer);
  Query q = *query;
  q.carriers = {carrier};
  if (q.params.empty()) q.params = std::move(narrow);
  const QueryPlan plan(direct.shards(), std::move(q));
  return direct.fold_planned(plan, carrier, consumer);
}

Result<std::vector<core::ParamDiversity>> diversity_impl(
    const DirectFold& direct, const std::string& carrier, const Query* query,
    std::optional<spectrum::Rat> rat) {
  DiversityAcc acc;
  core::CellFolder folder;
  const auto r = fold_for(direct, carrier, query, {},
                          [&](std::uint32_t, const core::CellRecord& rec) {
                            folder.fold(rec);
                            acc.consume(folder);
                          });
  if (!r) return Result<std::vector<core::ParamDiversity>>::error(r.error_message());
  return acc.finish(rat);
}

Result<std::vector<core::ParamDependence>> dependence_impl(
    const DirectFold& direct, const std::string& carrier, const Query* query) {
  DependenceAcc acc;
  core::CellFolder folder;
  const auto r = fold_for(direct, carrier, query, {},
                          [&](std::uint32_t, const core::CellRecord& rec) {
                            folder.fold(rec);
                            acc.consume(rec, folder);
                          });
  if (!r) return Result<std::vector<core::ParamDependence>>::error(r.error_message());
  return acc.finish();
}

Result<std::map<long, stats::ValueCounts>> priority_by_channel_impl(
    const DirectFold& direct, const std::string& carrier, bool candidate,
    const Query* query) {
  using R = Result<std::map<long, stats::ValueCounts>>;
  core::CellFolder folder;
  if (candidate) {
    CandidatePriorityAcc acc;
    const auto key = config::lte_param(config::ParamId::kNeighborPriority);
    const auto r = fold_for(direct, carrier, query, {key},
                            [&](std::uint32_t, const core::CellRecord& rec) {
                              folder.fold(rec);
                              acc.consume(folder, key);
                            });
    if (!r) return R::error(r.error_message());
    return std::move(acc.out);
  }
  ServingPriorityAcc acc;
  const auto key = config::lte_param(config::ParamId::kServingPriority);
  const auto r = fold_for(direct, carrier, query, {key},
                          [&](std::uint32_t, const core::CellRecord& rec) {
                            folder.fold(rec);
                            acc.consume(rec, folder, key);
                          });
  if (!r) return R::error(r.error_message());
  return std::move(acc.groups);
}

Result<double> multi_priority_impl(const DirectFold& direct,
                                   const std::string& carrier,
                                   const Query* query) {
  ServingPriorityAcc acc;
  core::CellFolder folder;
  const auto key = config::lte_param(config::ParamId::kServingPriority);
  const auto r = fold_for(direct, carrier, query, {key},
                          [&](std::uint32_t, const core::CellRecord& rec) {
                            folder.fold(rec);
                            acc.consume(rec, folder, key);
                          });
  if (!r) return Result<double>::error(r.error_message());
  return acc.multi_priority_fraction();
}

Result<std::map<long, stats::ValueCounts>> priority_by_city_impl(
    const DirectFold& direct, const std::string& carrier,
    const std::vector<geo::City>& cities, const Query* query) {
  CityPriorityAcc acc;
  core::CellFolder folder;
  const auto key = config::lte_param(config::ParamId::kServingPriority);
  const auto r = fold_for(direct, carrier, query, {key},
                          [&](std::uint32_t, const core::CellRecord& rec) {
                            folder.fold(rec);
                            acc.consume(rec, folder, key, cities);
                          });
  if (!r) return Result<std::map<long, stats::ValueCounts>>::error(r.error_message());
  return std::move(acc.out);
}

Result<std::vector<double>> spatial_impl(const DirectFold& direct,
                                         const std::string& carrier,
                                         config::ParamKey key,
                                         const geo::City& city, double radius_m,
                                         const Query* query) {
  SpatialAcc acc(radius_m);
  core::CellFolder folder;
  const auto r = fold_for(direct, carrier, query, {key},
                          [&](std::uint32_t, const core::CellRecord& rec) {
                            folder.fold(rec);
                            acc.consume(rec, folder, key, city);
                          });
  if (!r) return Result<std::vector<double>>::error(r.error_message());
  return acc.finish(radius_m);
}

std::vector<config::ParamKey> gaps_keys() {
  return {config::lte_param(config::ParamId::kSIntraSearch),
          config::lte_param(config::ParamId::kSNonIntraSearch),
          config::lte_param(config::ParamId::kThreshServingLow)};
}

Result<core::MeasurementGaps> gaps_impl(const DirectFold& direct,
                                        const std::string& carrier,
                                        const Query* query) {
  GapsAcc acc;
  core::CellFolder folder;
  const auto consumer = [&](std::uint32_t, const core::CellRecord& rec) {
    folder.fold(rec);
    acc.consume(rec, folder);
  };
  if (!carrier.empty()) {
    const auto r = fold_for(direct, carrier, query, gaps_keys(), consumer);
    if (!r) return Result<core::MeasurementGaps>::error(r.error_message());
    return std::move(acc.gaps);
  }
  // Pooled = every (selected) carrier in name order, exactly the view
  // path's carrier iteration — the per-carrier gap vectors concatenate.
  if (query) {
    Query q = *query;
    if (q.params.empty()) q.params = gaps_keys();
    const QueryPlan plan(direct.shards(), std::move(q));
    for (const CarrierQueryPlan& cp : plan.carriers()) {
      const auto r = direct.fold_planned(plan, cp.name, consumer);
      if (!r) return Result<core::MeasurementGaps>::error(r.error_message());
    }
    return std::move(acc.gaps);
  }
  for (const auto& name : direct.carriers()) {
    const auto r = direct.fold_carrier(name, consumer);
    if (!r) return Result<core::MeasurementGaps>::error(r.error_message());
  }
  return std::move(acc.gaps);
}

}  // namespace

Result<std::vector<core::ParamDiversity>> diversity_by_param(
    const DirectFold& direct, const std::string& carrier,
    std::optional<spectrum::Rat> rat) {
  return diversity_impl(direct, carrier, nullptr, rat);
}

Result<std::vector<core::ParamDiversity>> diversity_by_param(
    const DirectFold& direct, const std::string& carrier, const Query& query,
    std::optional<spectrum::Rat> rat) {
  return diversity_impl(direct, carrier, &query, rat);
}

Result<std::vector<core::ParamDependence>> frequency_dependence(
    const DirectFold& direct, const std::string& carrier) {
  return dependence_impl(direct, carrier, nullptr);
}

Result<std::vector<core::ParamDependence>> frequency_dependence(
    const DirectFold& direct, const std::string& carrier, const Query& query) {
  return dependence_impl(direct, carrier, &query);
}

Result<std::map<long, stats::ValueCounts>> priority_by_channel(
    const DirectFold& direct, const std::string& carrier, bool candidate) {
  return priority_by_channel_impl(direct, carrier, candidate, nullptr);
}

Result<std::map<long, stats::ValueCounts>> priority_by_channel(
    const DirectFold& direct, const std::string& carrier, bool candidate,
    const Query& query) {
  return priority_by_channel_impl(direct, carrier, candidate, &query);
}

Result<double> multi_priority_cell_fraction(const DirectFold& direct,
                                            const std::string& carrier) {
  return multi_priority_impl(direct, carrier, nullptr);
}

Result<double> multi_priority_cell_fraction(const DirectFold& direct,
                                            const std::string& carrier,
                                            const Query& query) {
  return multi_priority_impl(direct, carrier, &query);
}

Result<std::map<long, stats::ValueCounts>> priority_by_city(
    const DirectFold& direct, const std::string& carrier,
    const std::vector<geo::City>& cities) {
  return priority_by_city_impl(direct, carrier, cities, nullptr);
}

Result<std::map<long, stats::ValueCounts>> priority_by_city(
    const DirectFold& direct, const std::string& carrier,
    const std::vector<geo::City>& cities, const Query& query) {
  return priority_by_city_impl(direct, carrier, cities, &query);
}

Result<std::vector<double>> spatial_diversity(const DirectFold& direct,
                                              const std::string& carrier,
                                              config::ParamKey key,
                                              const geo::City& city,
                                              double radius_m) {
  return spatial_impl(direct, carrier, key, city, radius_m, nullptr);
}

Result<std::vector<double>> spatial_diversity(const DirectFold& direct,
                                              const std::string& carrier,
                                              config::ParamKey key,
                                              const geo::City& city,
                                              double radius_m,
                                              const Query& query) {
  return spatial_impl(direct, carrier, key, city, radius_m, &query);
}

Result<core::MeasurementGaps> measurement_decision_gaps(
    const DirectFold& direct, const std::string& carrier) {
  return gaps_impl(direct, carrier, nullptr);
}

Result<core::MeasurementGaps> measurement_decision_gaps(
    const DirectFold& direct, const Query& query, const std::string& carrier) {
  return gaps_impl(direct, carrier, &query);
}

namespace {

/// The whole fig11–22 accumulator set behind ONE fold, bundled so the
/// scheduled multi-carrier mix can hold an independent instance per
/// concurrent carrier job (CellFolder is stateful — never share one across
/// threads).  Same consume() calls in the same order as the standalone
/// entry points, so every product is bit-identical to them.
struct MixAcc {
  DiversityAcc diversity;
  DependenceAcc dependence;
  ServingPriorityAcc serving;
  CandidatePriorityAcc candidate;
  CityPriorityAcc city;
  GapsAcc gaps;
  std::optional<SpatialAcc> spatial;
  core::CellFolder folder;
  const MixOptions* options;
  config::ParamKey serving_key = config::lte_param(config::ParamId::kServingPriority);
  config::ParamKey candidate_key =
      config::lte_param(config::ParamId::kNeighborPriority);

  explicit MixAcc(const MixOptions& opts) : options(&opts) {
    if (opts.spatial) spatial.emplace(opts.spatial->radius_m);
  }

  void consume(const core::CellRecord& rec) {
    folder.fold(rec);
    diversity.consume(folder);
    dependence.consume(rec, folder);
    serving.consume(rec, folder, serving_key);
    candidate.consume(folder, candidate_key);
    city.consume(rec, folder, serving_key, options->cities);
    gaps.consume(rec, folder);
    if (spatial)
      spatial->consume(rec, folder, options->spatial->key,
                       options->spatial->city);
  }

  CarrierAnalysis finish(FoldStats stats) {
    CarrierAnalysis out;
    out.diversity = diversity.finish(options->diversity_rat);
    out.dependence = dependence.finish();
    out.multi_priority_fraction = serving.multi_priority_fraction();
    out.serving_priority = std::move(serving.groups);
    out.candidate_priority = std::move(candidate.out);
    out.priority_by_city = std::move(city.out);
    if (spatial)
      out.spatial_diversity = spatial->finish(options->spatial->radius_m);
    out.gaps = std::move(gaps.gaps);
    out.stats = stats;
    return out;
  }
};

}  // namespace

Result<CarrierAnalysis> analyze_carrier(const DirectFold& direct,
                                        const std::string& carrier,
                                        const MixOptions& options) {
  MixAcc acc(options);
  const auto r = direct.fold_carrier(
      carrier,
      [&](std::uint32_t, const core::CellRecord& rec) { acc.consume(rec); });
  if (!r) return Result<CarrierAnalysis>::error(r.error_message());
  return acc.finish(r.value());
}

Result<CarrierAnalysis> analyze_carrier(const DirectFold& direct,
                                        const std::string& carrier,
                                        const MixOptions& options,
                                        const Query& query) {
  Query q = query;
  q.carriers = {carrier};
  const QueryPlan plan(direct.shards(), std::move(q));
  MixAcc acc(options);
  const auto r = direct.fold_planned(
      plan, carrier,
      [&](std::uint32_t, const core::CellRecord& rec) { acc.consume(rec); });
  if (!r) return Result<CarrierAnalysis>::error(r.error_message());
  return acc.finish(r.value());
}

Result<QueryAnalysis> analyze_query(const DirectFold& direct,
                                    const Query& query,
                                    const MixOptions& options) {
  const QueryPlan plan(direct.shards(), query);
  QueryAnalysis out;

  // One independent accumulator bundle per selected carrier; fold_query
  // drives each from exactly one job, so no bundle is ever shared.
  std::vector<MixAcc> accs;
  accs.reserve(plan.carriers().size());
  for (std::size_t i = 0; i < plan.carriers().size(); ++i)
    accs.emplace_back(options);

  std::vector<FoldStats> per;
  const auto r = direct.fold_query(
      plan,
      [&](std::size_t slot, const CarrierQueryPlan&) {
        return [&accs, slot](std::uint32_t, const core::CellRecord& rec) {
          accs[slot].consume(rec);
        };
      },
      &per);
  if (!r) return Result<QueryAnalysis>::error(r.error_message());

  out.carriers.reserve(plan.carriers().size());
  out.results.reserve(plan.carriers().size());
  for (std::size_t i = 0; i < plan.carriers().size(); ++i) {
    out.carriers.push_back(plan.carriers()[i].name);
    // Each entry carries its own fold's rows/cells/blocks/bytes; the
    // plan-wide skip counts live only in the aggregate (no double count).
    out.results.push_back(accs[i].finish(per[i]));
  }
  out.stats = r.value();
  return out;
}

}  // namespace mmlab::store
