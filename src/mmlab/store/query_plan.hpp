// Manifest-level query planning for shard-direct folds (DESIGN.md §13).
//
// A Query names what a fold is actually after — a carrier subset, a cell-id
// range, a ParamKey subset — instead of the caller folding everything and
// filtering the answer.  QueryPlan turns that declaration into a block
// selection using only the manifest: per-block carrier indices prune other
// carriers' blocks, and (when the manifest carries the per-block extras)
// per-block [first_cell, last_cell] ranges prune blocks that cannot
// intersect the requested id range.  A skipped block is never mapped,
// CRC-checked, or parsed — its bytes are simply never touched — and the
// skip counts surface in FoldStats so callers can see what the planner
// saved.
//
// The ParamKey predicate cannot prune blocks (the manifest has no per-block
// param census); it pushes down to the wire instead: the fold decodes each
// selected block's structure but skips the 8-byte value payload of every
// filtered observation (core::mmds::parse_cell_filtered), so a single-key
// query reads strictly fewer bytes than an unfiltered fold of the same
// blocks.
//
// Legacy fallback: stores written before the extras existed (manifest
// flags = 0) still plan and fold correctly — carrier pruning works (the
// carrier index is core manifest data), cell-range pruning degrades to
// "select every block and drop out-of-range cells at parse time", and the
// fold runs unwindowed exactly as the plain path does.  Extras are
// all-or-nothing at the manifest level (see mmds2.hpp), so a plan never
// mixes prunable and unprunable blocks.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "mmlab/core/cell_fold.hpp"
#include "mmlab/store/shard_set.hpp"

namespace mmlab::store {

/// Declarative selection over a store.  Empty vectors mean "no predicate on
/// that axis", not "select nothing".
struct Query {
  /// Carriers to fold (any order, duplicates ignored); empty = all.
  /// Unknown names are ignored — the planner simply selects nothing for
  /// them, matching the empty-success convention of fold_carrier.
  std::vector<std::string> carriers;
  /// Inclusive cell-id range.
  std::uint32_t min_cell = 0;
  std::uint32_t max_cell = std::numeric_limits<std::uint32_t>::max();
  /// Parameters whose values the query needs; empty = all.
  std::vector<config::ParamKey> params;

  bool all_cells() const {
    return min_cell == 0 &&
           max_cell == std::numeric_limits<std::uint32_t>::max();
  }
  /// No predicate on any axis — a planned fold degenerates to the plain
  /// full fold (and the entry points take the plain path).
  bool selects_all() const {
    return carriers.empty() && params.empty() && all_cells();
  }
};

/// One selected carrier's share of a plan.
struct CarrierQueryPlan {
  std::string name;
  std::uint32_t carrier_index = 0;
  /// Selected global block indices (into ShardSet::blocks()), manifest
  /// order — the merge order contract is unchanged from the plain fold.
  std::vector<std::size_t> blocks;
  /// safe_floor[i] = min first_cell over blocks[i..] — the emission
  /// frontier over the *selected* subset.  Pruned blocks cannot contain
  /// in-range ids, so the frontier stays correct.  Empty without extras.
  std::vector<std::uint32_t> safe_floor;
  std::uint64_t rows = 0;   ///< manifest row total of selected blocks
  std::uint64_t bytes = 0;  ///< body bytes of selected blocks
  /// This carrier's blocks the cell-range predicate pruned (carrier-level
  /// pruning is accounted store-wide in QueryPlan, not here).
  std::uint64_t blocks_pruned = 0;
  std::uint64_t bytes_pruned = 0;
};

/// A Query bound to one opened ShardSet: the block selection, the emission
/// frontiers over it, and the param-index keep mask the wire filter needs.
/// Planning reads only the manifest (O(blocks + params), no I/O), so
/// building a throwaway plan per query is cheap.  The set must outlive the
/// plan.
class QueryPlan {
 public:
  QueryPlan(const ShardSet& set, Query query);

  const Query& query() const { return query_; }
  const ShardSet& shards() const { return *set_; }

  /// Selected carriers in sorted name order (the fold/merge order).
  const std::vector<CarrierQueryPlan>& carriers() const { return carriers_; }
  const CarrierQueryPlan* find_carrier(std::string_view name) const;

  /// Param-index keep mask over the store's param table; empty when the
  /// query has no param predicate.
  const std::vector<char>& param_mask() const { return param_mask_; }
  bool has_param_filter() const { return !query_.params.empty(); }
  /// A wire-level filter is active: folded records may differ from the
  /// stored runs (fewer observations, dropped cells).
  bool filtered() const {
    return has_param_filter() || !query_.all_cells();
  }

  /// Store-wide accounting: selected vs skipped over EVERY block of the
  /// store (other carriers' blocks count as skipped — that is exactly what
  /// a single-carrier query saves over a full fold).
  std::uint64_t blocks_selected() const { return blocks_selected_; }
  std::uint64_t bytes_selected() const { return bytes_selected_; }
  std::uint64_t blocks_skipped() const { return blocks_skipped_; }
  std::uint64_t bytes_skipped() const { return bytes_skipped_; }

 private:
  const ShardSet* set_;
  Query query_;
  std::vector<CarrierQueryPlan> carriers_;
  std::vector<char> param_mask_;
  std::uint64_t blocks_selected_ = 0;
  std::uint64_t bytes_selected_ = 0;
  std::uint64_t blocks_skipped_ = 0;
  std::uint64_t bytes_skipped_ = 0;
};

}  // namespace mmlab::store
