// Bounded-memory MMDS v2 writers.
//
// ShardWriter is the low-level single-pass appender: feed it cells (already
// grouped by carrier, ascending cell id within a run) and it streams block
// bodies into shard files, rotating blocks and shards at the configured
// byte targets and accumulating the manifest as it goes.  Peak memory is
// one block buffer (~target_block_bytes) regardless of dataset size.
//
// StreamingDatasetSink sits on top for producers that emit *snapshots* in
// arbitrary carrier order (the netgen streaming generator, a live ingest
// pipeline): it batches snapshots into an in-memory ConfigDatabase chunk
// and spills the chunk — carriers in name order, cells ascending — as one
// run per carrier.  The spill contract: loading the finished store yields
// exactly the fold-merge of the chunk databases in spill order
// (ConfigDatabase::merge semantics).  When every cell's snapshots arrive in
// nondecreasing time order — true of the generator and of any replayed
// crawl — that is bit-identical to add_snapshot-ing everything into one big
// database, so chunk size never changes results.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "mmlab/core/database.hpp"
#include "mmlab/core/dataset_io.hpp"
#include "mmlab/store/mmds2.hpp"
#include "mmlab/util/byteio.hpp"

namespace mmlab::store {

struct WriterOptions {
  /// Block rotation threshold: a block closes once its body reaches this
  /// (the final cell may overshoot).  Blocks are the mmap read granule and
  /// the out-of-core build's merge unit.
  std::size_t target_block_bytes = 8u << 20;
  /// Shard rotation threshold: a shard closes once it holds this many bytes
  /// (checked at block boundaries; blocks never span shards).
  std::size_t target_shard_bytes = 64u << 20;
};

struct WriteStats {
  std::uint64_t rows = 0;
  std::uint64_t cells = 0;  ///< cell *runs* written (a cell may span runs)
  std::uint64_t blocks = 0;
  std::uint64_t shards = 0;
  std::uint64_t bytes = 0;  ///< shard payload bytes, magics included
};

class ShardWriter {
 public:
  /// The directory must already exist (or be creatable); it is created if
  /// missing.  Throws std::runtime_error on I/O failure.
  explicit ShardWriter(std::string dir, WriterOptions options = {});

  /// Append one cell run entry.  Consecutive calls with the same carrier
  /// and ascending ids extend the current run; a carrier switch or a
  /// non-ascending id starts a new block (a new run of that cell).
  /// Carrier and parameter table indices are assigned on first sight.
  void add_cell(const std::string& carrier, std::uint32_t id,
                const core::CellRecord& rec);

  /// Flush everything and write the manifest.  The writer is spent
  /// afterwards; add_cell must not be called again.
  WriteStats finish();

 private:
  void flush_block();
  void close_shard();

  std::string dir_;
  WriterOptions options_;
  Manifest manifest_;
  std::map<std::string, std::uint32_t> carrier_index_;
  std::set<config::ParamKey> seen_params_;
  core::mmds::ParamIndexMap param_index_;

  std::unique_ptr<BufferedFileWriter> shard_;
  ByteWriter block_;
  // Current-block state; carrier index is valid only while in_block_.
  bool in_block_ = false;
  std::uint32_t block_carrier_ = 0;
  std::uint32_t block_first_id_ = 0;
  std::uint32_t last_id_ = 0;
  std::uint64_t block_cells_ = 0;
  std::uint64_t block_rows_ = 0;
  WriteStats stats_;
  bool finished_ = false;
};

class StreamingDatasetSink {
 public:
  /// Spills to `writer` every `chunk_rows` buffered observations.  The
  /// writer must outlive the sink; call finish() (not the writer's) when
  /// done so the tail chunk spills first.
  explicit StreamingDatasetSink(ShardWriter& writer,
                                std::size_t chunk_rows = 4'000'000);

  /// Mirror of ConfigDatabase::add_snapshot.
  void snapshot(const std::string& carrier, std::uint32_t cell_id,
                spectrum::Rat rat, std::uint32_t channel, geo::Point position,
                SimTime t, const std::vector<config::ParamObservation>& params);

  /// Spill the buffered chunk now (exposed for tests; finish() calls it).
  void flush();

  /// Spill the tail and finish the writer.
  WriteStats finish();

 private:
  ShardWriter& writer_;
  std::size_t chunk_rows_;
  core::ConfigDatabase chunk_;
  std::size_t buffered_rows_ = 0;
};

/// One-shot: write an in-memory database as an MMDS v2 store (carriers in
/// name order, each as one run — the canonical single-chunk layout).
WriteStats save_database(const core::ConfigDatabase& db,
                         const std::string& dir, WriterOptions options = {});

}  // namespace mmlab::store
