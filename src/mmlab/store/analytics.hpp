// Figure-level analyses over an out-of-core store.
//
// Every columnar analysis entry point gains a StoreView overload that
// forwards to the core::ColumnarView implementation — the StoreView *is* a
// ColumnarView assembled out-of-core, so results are bit-identical to the
// in-memory path by construction (asserted in test_store.cpp and gated in
// tools/store_soak for thread counts 1/2/4/hw).  Query-level parallel
// folds (values / values_grouped / values_by_context with threads != 1)
// come straight from ColumnarView's deterministic partition-merge
// contract; nothing here re-reads the shards once the view is built.
#pragma once

#include "mmlab/core/analysis.hpp"
#include "mmlab/store/columnar_build.hpp"

namespace mmlab::store {

inline std::vector<core::ParamDiversity> diversity_by_param(
    const StoreView& sv, const std::string& carrier,
    std::optional<spectrum::Rat> rat = std::nullopt) {
  return core::diversity_by_param(sv.view, carrier, rat);
}

inline std::vector<core::ParamDependence> frequency_dependence(
    const StoreView& sv, const std::string& carrier) {
  return core::frequency_dependence(sv.view, carrier);
}

inline std::map<long, stats::ValueCounts> priority_by_channel(
    const StoreView& sv, const std::string& carrier, bool candidate,
    unsigned threads = 1) {
  return core::priority_by_channel(sv.view, carrier, candidate, threads);
}

inline double multi_priority_cell_fraction(const StoreView& sv,
                                           const std::string& carrier) {
  return core::multi_priority_cell_fraction(sv.view, carrier);
}

inline std::map<long, stats::ValueCounts> priority_by_city(
    const StoreView& sv, const std::string& carrier,
    const std::vector<geo::City>& cities) {
  return core::priority_by_city(sv.view, carrier, cities);
}

inline std::vector<double> spatial_diversity(const StoreView& sv,
                                             const std::string& carrier,
                                             config::ParamKey key,
                                             const geo::City& city,
                                             double radius_m) {
  return core::spatial_diversity(sv.view, carrier, key, city, radius_m);
}

inline core::MeasurementGaps measurement_decision_gaps(
    const StoreView& sv, const std::string& carrier = "") {
  return core::measurement_decision_gaps(sv.view, carrier);
}

}  // namespace mmlab::store
