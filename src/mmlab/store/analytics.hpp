// Figure-level analyses over an out-of-core store.
//
// Two families:
//
// StoreView overloads forward to the core::ColumnarView implementation —
// the StoreView *is* a ColumnarView assembled out-of-core, so results are
// bit-identical to the in-memory path by construction (asserted in
// test_store.cpp and gated in tools/store_soak for thread counts 1/2/4/hw).
// Query-level parallel folds (values / values_grouped / values_by_context
// with threads != 1) come straight from ColumnarView's deterministic
// partition-merge contract; nothing here re-reads the shards once the view
// is built.
//
// DirectFold overloads answer the same questions straight off the mapped
// shards with no view at all: each is one streaming fold over the carrier's
// merged cells (core::CellFolder supplies the identical per-cell dedup /
// latest products the view precomputes), so results are bit-identical to
// BOTH other paths while resident memory stays O(parse window + answer).
// They return Result because a fold can hit mid-stream corruption (block
// CRC or structural damage) — on error no partial answer escapes.  For the
// whole fig11–22 mix, analyze_carrier folds the carrier ONCE and fills
// every product, instead of one fold per entry point.
#pragma once

#include <optional>

#include "mmlab/core/analysis.hpp"
#include "mmlab/store/columnar_build.hpp"
#include "mmlab/store/direct_fold.hpp"

namespace mmlab::store {

inline std::vector<core::ParamDiversity> diversity_by_param(
    const StoreView& sv, const std::string& carrier,
    std::optional<spectrum::Rat> rat = std::nullopt) {
  return core::diversity_by_param(sv.view, carrier, rat);
}

inline std::vector<core::ParamDependence> frequency_dependence(
    const StoreView& sv, const std::string& carrier) {
  return core::frequency_dependence(sv.view, carrier);
}

inline std::map<long, stats::ValueCounts> priority_by_channel(
    const StoreView& sv, const std::string& carrier, bool candidate,
    unsigned threads = 1) {
  return core::priority_by_channel(sv.view, carrier, candidate, threads);
}

inline double multi_priority_cell_fraction(const StoreView& sv,
                                           const std::string& carrier) {
  return core::multi_priority_cell_fraction(sv.view, carrier);
}

inline std::map<long, stats::ValueCounts> priority_by_city(
    const StoreView& sv, const std::string& carrier,
    const std::vector<geo::City>& cities) {
  return core::priority_by_city(sv.view, carrier, cities);
}

inline std::vector<double> spatial_diversity(const StoreView& sv,
                                             const std::string& carrier,
                                             config::ParamKey key,
                                             const geo::City& city,
                                             double radius_m) {
  return core::spatial_diversity(sv.view, carrier, key, city, radius_m);
}

inline core::MeasurementGaps measurement_decision_gaps(
    const StoreView& sv, const std::string& carrier = "") {
  return core::measurement_decision_gaps(sv.view, carrier);
}

// --- shard-direct overloads (no view materialization) ------------------------
// Defined in analytics.cpp; each is a single fold over the carrier's merged
// cells, bit-identical to the StoreView / in-memory answers.

Result<std::vector<core::ParamDiversity>> diversity_by_param(
    const DirectFold& direct, const std::string& carrier,
    std::optional<spectrum::Rat> rat = std::nullopt);

Result<std::vector<core::ParamDependence>> frequency_dependence(
    const DirectFold& direct, const std::string& carrier);

Result<std::map<long, stats::ValueCounts>> priority_by_channel(
    const DirectFold& direct, const std::string& carrier, bool candidate);

Result<double> multi_priority_cell_fraction(const DirectFold& direct,
                                            const std::string& carrier);

Result<std::map<long, stats::ValueCounts>> priority_by_city(
    const DirectFold& direct, const std::string& carrier,
    const std::vector<geo::City>& cities);

Result<std::vector<double>> spatial_diversity(const DirectFold& direct,
                                              const std::string& carrier,
                                              config::ParamKey key,
                                              const geo::City& city,
                                              double radius_m);

/// Empty carrier = pool every carrier (name order), as in the other paths.
Result<core::MeasurementGaps> measurement_decision_gaps(
    const DirectFold& direct, const std::string& carrier = "");

// --- planned overloads -------------------------------------------------------
// Same products restricted to the query's selection: the planner prunes
// blocks (other carriers, non-overlapping cell ranges) and the ParamKey
// predicate pushes down to the wire (store/query_plan.hpp).  `query`'s
// carrier list is ignored where an explicit carrier argument exists — the
// argument wins.  Fixed-key products (priorities, gaps, spatial) narrow an
// empty query.params to exactly the keys they read, so a planned call
// decodes only those values; census products (diversity, dependence) need
// every parameter and never narrow.  Each planned answer equals the plain
// answer computed over a pre-filtered database (property-tested in
// test_query_plan.cpp).

Result<std::vector<core::ParamDiversity>> diversity_by_param(
    const DirectFold& direct, const std::string& carrier, const Query& query,
    std::optional<spectrum::Rat> rat = std::nullopt);

Result<std::vector<core::ParamDependence>> frequency_dependence(
    const DirectFold& direct, const std::string& carrier, const Query& query);

Result<std::map<long, stats::ValueCounts>> priority_by_channel(
    const DirectFold& direct, const std::string& carrier, bool candidate,
    const Query& query);

Result<double> multi_priority_cell_fraction(const DirectFold& direct,
                                            const std::string& carrier,
                                            const Query& query);

Result<std::map<long, stats::ValueCounts>> priority_by_city(
    const DirectFold& direct, const std::string& carrier,
    const std::vector<geo::City>& cities, const Query& query);

Result<std::vector<double>> spatial_diversity(const DirectFold& direct,
                                              const std::string& carrier,
                                              config::ParamKey key,
                                              const geo::City& city,
                                              double radius_m,
                                              const Query& query);

/// Pooled over the query's selected carriers (sorted name order) when
/// `carrier` is empty.
Result<core::MeasurementGaps> measurement_decision_gaps(
    const DirectFold& direct, const Query& query,
    const std::string& carrier = "");

// --- the one-pass analysis mix ----------------------------------------------

/// The Fig 21 spatial-diversity query's inputs.
struct SpatialQuery {
  config::ParamKey key;
  geo::City city;
  double radius_m = 0.0;
};

struct MixOptions {
  /// Fig 16's optional RAT filter for the diversity sweep.
  std::optional<spectrum::Rat> diversity_rat;
  /// Cities for the Fig 20 location join (empty = every cell maps to -1 and
  /// priority_by_city comes back empty, matching values_grouped semantics).
  std::vector<geo::City> cities;
  /// Fig 21, run only when set.
  std::optional<SpatialQuery> spatial;
};

/// Every fig11–22 product of one carrier, from ONE fold over its shards.
struct CarrierAnalysis {
  std::vector<core::ParamDiversity> diversity;          // fig 16/17/22
  std::vector<core::ParamDependence> dependence;        // fig 19
  std::map<long, stats::ValueCounts> serving_priority;  // fig 18
  std::map<long, stats::ValueCounts> candidate_priority;
  double multi_priority_fraction = 0.0;
  std::map<long, stats::ValueCounts> priority_by_city;  // fig 20
  std::vector<double> spatial_diversity;                // fig 21
  core::MeasurementGaps gaps;                           // fig 11
  FoldStats stats;
};

/// Fold `carrier` once and compute every analysis product — each member is
/// bit-identical to the corresponding standalone entry point (which is
/// bit-identical to the view path in turn).  The per-entry-point folds
/// would re-parse the store once per figure; this is the economical form
/// the CLI and soak tool drive.
Result<CarrierAnalysis> analyze_carrier(const DirectFold& direct,
                                        const std::string& carrier,
                                        const MixOptions& options = {});

/// Planned mix: only the query's selected blocks of `carrier` fold (the
/// returned stats carry the plan's store-wide skip counts), and any
/// ParamKey predicate pushes down to the wire.  The mix reads every
/// parameter, so an empty query.params is NOT narrowed; with a non-empty
/// predicate, fixed-key products whose keys were filtered out come back
/// empty (that is what the query asked for).
Result<CarrierAnalysis> analyze_carrier(const DirectFold& direct,
                                        const std::string& carrier,
                                        const MixOptions& options,
                                        const Query& query);

/// The scheduled multi-carrier mix: every carrier the query selects,
/// analyzed via DirectFold::fold_query — concurrent cross-carrier jobs
/// (largest first) under the engine's shared window budget when
/// options().threads > 1, the sequential per-carrier loop when 1.
struct QueryAnalysis {
  std::vector<std::string> carriers;  ///< selected, sorted name order
  /// Parallel to `carriers`; each entry's stats are that carrier's own
  /// fold (rows/cells/blocks/bytes, no plan-wide skip counts).
  std::vector<CarrierAnalysis> results;
  /// Aggregate over all carrier folds; includes the plan's skip counts and
  /// the *concurrent* peak_resident_blocks (the shared-budget number).
  FoldStats stats;
};

Result<QueryAnalysis> analyze_query(const DirectFold& direct,
                                    const Query& query,
                                    const MixOptions& options = {});

}  // namespace mmlab::store
