#include "mmlab/store/shard_writer.hpp"

#include <cstdio>
#include <filesystem>
#include <stdexcept>

#include "mmlab/util/crc.hpp"

namespace mmlab::store {

namespace {

std::string shard_name(std::size_t index) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "shard-%04zu.mmds2", index);
  return buf;
}

}  // namespace

// --- ShardWriter -------------------------------------------------------------

ShardWriter::ShardWriter(std::string dir, WriterOptions options)
    : dir_(std::move(dir)), options_(options) {
  manifest_.block_extras = true;
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec)
    throw std::runtime_error("ShardWriter: cannot create " + dir_ + ": " +
                             ec.message());
}

void ShardWriter::add_cell(const std::string& carrier, std::uint32_t id,
                           const core::CellRecord& rec) {
  if (finished_) throw std::logic_error("ShardWriter: add_cell after finish");
  const auto [cit, new_carrier] =
      carrier_index_.try_emplace(carrier, manifest_.carriers.size());
  if (new_carrier) manifest_.carriers.push_back(carrier);
  for (const auto& obs : rec.observations) {
    if (seen_params_.insert(obs.key).second) {
      param_index_.set(obs.key,
                       static_cast<std::uint32_t>(manifest_.params.size()));
      manifest_.params.push_back(config::param_name(obs.key));
    }
  }

  // A carrier switch or a non-ascending id means a new run; readers rely on
  // ids ascending *within* a block to drive the k-way cell merge.
  if (in_block_ &&
      (block_carrier_ != cit->second || id <= last_id_ ||
       block_.size() >= options_.target_block_bytes))
    flush_block();
  if (!in_block_) {
    in_block_ = true;
    block_carrier_ = cit->second;
    block_first_id_ = id;
    block_cells_ = 0;
    block_rows_ = 0;
  }
  core::mmds::encode_cell(block_, id, rec, param_index_);
  last_id_ = id;
  ++block_cells_;
  block_rows_ += rec.observations.size();
}

void ShardWriter::flush_block() {
  if (!in_block_) return;
  if (shard_ && shard_->bytes_written() >= options_.target_shard_bytes)
    close_shard();
  if (!shard_) {
    const std::string name = shard_name(manifest_.shards.size());
    shard_ = std::make_unique<BufferedFileWriter>(
        (std::filesystem::path(dir_) / name).string());
    shard_->write(kShardMagic, sizeof(kShardMagic));
    manifest_.shards.push_back({name, 0, 0, {}});
  }
  BlockInfo info;
  info.carrier_index = block_carrier_;
  info.offset = shard_->bytes_written();
  info.length = block_.size();
  info.cell_count = block_cells_;
  info.row_count = block_rows_;
  info.crc16 = crc16_ccitt(block_.buffer().data(), block_.size());
  info.first_cell = block_first_id_;
  info.last_cell = last_id_;
  shard_->write(block_.buffer().data(), block_.size());
  manifest_.shards.back().blocks.push_back(info);
  stats_.rows += block_rows_;
  stats_.cells += block_cells_;
  ++stats_.blocks;
  block_.clear();
  in_block_ = false;
}

void ShardWriter::close_shard() {
  if (!shard_) return;
  ShardInfo& info = manifest_.shards.back();
  info.file_size = shard_->bytes_written();
  info.crc16 = shard_->crc16();
  stats_.bytes += info.file_size;
  shard_->flush();
  shard_.reset();
}

WriteStats ShardWriter::finish() {
  if (finished_) return stats_;
  flush_block();
  close_shard();
  stats_.shards = manifest_.shards.size();
  write_manifest(dir_, manifest_);
  finished_ = true;
  return stats_;
}

// --- StreamingDatasetSink ----------------------------------------------------

StreamingDatasetSink::StreamingDatasetSink(ShardWriter& writer,
                                           std::size_t chunk_rows)
    : writer_(writer), chunk_rows_(chunk_rows == 0 ? 1 : chunk_rows) {}

void StreamingDatasetSink::snapshot(
    const std::string& carrier, std::uint32_t cell_id, spectrum::Rat rat,
    std::uint32_t channel, geo::Point position, SimTime t,
    const std::vector<config::ParamObservation>& params) {
  chunk_.add_snapshot(carrier, cell_id, rat, channel, position, t, params);
  buffered_rows_ += params.size();
  if (buffered_rows_ >= chunk_rows_) flush();
}

void StreamingDatasetSink::flush() {
  for (const auto& [carrier, cells] : chunk_.carriers())
    for (const auto& [id, rec] : cells) writer_.add_cell(carrier, id, rec);
  chunk_ = core::ConfigDatabase{};
  buffered_rows_ = 0;
}

WriteStats StreamingDatasetSink::finish() {
  flush();
  return writer_.finish();
}

// --- save_database -----------------------------------------------------------

WriteStats save_database(const core::ConfigDatabase& db,
                         const std::string& dir, WriterOptions options) {
  ShardWriter writer(dir, options);
  for (const auto& [carrier, cells] : db.carriers())
    for (const auto& [id, rec] : cells) writer.add_cell(carrier, id, rec);
  return writer.finish();
}

}  // namespace mmlab::store
