// Shard-direct query folds: answer analysis queries straight off the mapped
// MMDS v2 blocks, with no ColumnarView (or any other whole-store structure)
// materialized in between.
//
// The view path pays for generality: build_columnar parses every block,
// assembles per-carrier column arrays, and only then answers queries — so
// peak RSS carries the whole view even when the caller wants one number.
// DirectFold inverts that: it streams each carrier's blocks through a
// bounded parse window and hands every *fully merged* cell record to a
// consumer exactly once, in globally ascending cell-id order.  Queries and
// the figure entry points (store/analytics.hpp) are folds over that stream,
// so resident memory is O(window) blocks plus the answer — never the store,
// never a view.
//
// Merge contract (DESIGN.md §12): a cell's runs merge via
// CellRecord::merge_from in global (shard, block) manifest order — exactly
// what load_database and build_columnar do — so every downstream product is
// bit-identical to the view path for any thread count and window size.  The
// windowing invariant that makes streaming safe: with the manifest's
// per-block cell-id ranges (Manifest::block_extras), a merged cell may be
// emitted once its id is below every unparsed block's first_cell — ids
// within a block lie inside [first_cell, last_cell], so no later block can
// contribute another run of it.  Stores without the extras (written before
// they existed) still fold correctly; they just parse all of a carrier's
// blocks before emitting (no frontier information) and skip the per-block
// CRC (no stored block CRC).
//
// Planned folds (DESIGN.md §13): a store::QueryPlan narrows a fold to the
// blocks that can contribute to a query — other carriers' blocks and (with
// the extras) blocks whose cell-id range misses the query are never mapped,
// checksummed, or parsed; FoldStats counts what the planner skipped.  A
// ParamKey predicate additionally pushes down to the wire: filtered
// observations' 8-byte value payloads are skipped, not decoded.  Filtered
// folds preserve the merge contract exactly — the metadata tie-break
// (which run's rat/channel/position wins) is computed over each run's
// *unfiltered* front observation, so a planned answer is bit-identical to
// filtering the corresponding full-fold answer.  fold_query schedules the
// selected carriers as concurrent pool jobs (largest first) under one
// shared parse-window budget.
//
// Integrity: with the extras present, each block body is checksummed right
// before parsing (FoldOptions::check_block_crc).  A mismatch — or any
// structural damage the parser trips on — fails the whole fold; a query
// never returns a partial answer built from a corrupt prefix.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "mmlab/core/database.hpp"
#include "mmlab/stats/diversity.hpp"
#include "mmlab/store/query_plan.hpp"
#include "mmlab/store/shard_set.hpp"
#include "mmlab/util/result.hpp"

namespace mmlab::store {

/// Shared residency accounting for folds that run concurrently (the
/// cross-carrier scheduler): every participating fold adds its parsed-and-
/// resident block count here, so `peak` is the high-water mark of the
/// *total* window across jobs — the number the shared budget bounds.
struct ResidencyGauge {
  std::atomic<std::uint64_t> resident{0};
  std::atomic<std::uint64_t> peak{0};

  void add(std::uint64_t n) {
    const std::uint64_t now =
        resident.fetch_add(n, std::memory_order_relaxed) + n;
    std::uint64_t p = peak.load(std::memory_order_relaxed);
    while (p < now &&
           !peak.compare_exchange_weak(p, now, std::memory_order_relaxed)) {
    }
  }
  void sub(std::uint64_t n) {
    resident.fetch_sub(n, std::memory_order_relaxed);
  }
};

struct FoldOptions {
  /// Blocks within the parse window parse concurrently when != 1 (0 = all
  /// cores).  The merge is serial in manifest order, so results are
  /// identical for every value.  fold_query additionally uses this as the
  /// cross-carrier job count (concurrency moves between carriers, never
  /// multiplies).
  unsigned threads = 1;
  /// madvise(MADV_DONTNEED) each block's mapped bytes once its last cell
  /// has been merged out.  Disable to keep the page cache warm when the
  /// same store will be re-read immediately (equality passes).
  bool release_mapped = true;
  /// Parse window in blocks (0 = auto: max(2, 2 * threads)).  Larger
  /// windows trade memory for parse parallelism.  The window is a floor on
  /// batching, not a ceiling on residency: blocks stay resident until their
  /// cells are merged out, so a layout with interleaved cell-id ranges can
  /// hold more than `window_blocks` parsed blocks alive (correctness never
  /// depends on the window).  Without manifest extras the whole carrier
  /// parses up front regardless.  fold_query treats this as the GLOBAL
  /// budget and splits it across concurrent carrier jobs.
  std::size_t window_blocks = 0;
  /// Checksum each block body against the manifest's per-block CRC right
  /// before parsing it.  Only effective when the store carries the extras
  /// (see FoldStats::crc_checked for what actually happened).
  bool check_block_crc = true;
  /// Optional shared residency gauge; every fold run through this engine
  /// reports its resident-block count there (fold_query supplies its own
  /// when the caller doesn't).  Must outlive the folds.
  ResidencyGauge* gauge = nullptr;
};

struct FoldStats {
  std::uint64_t rows = 0;    ///< observations parsed (wire rows scanned)
  std::uint64_t cells = 0;   ///< merged cells emitted (distinct ids)
  std::uint64_t blocks = 0;  ///< blocks parsed
  std::uint64_t bytes = 0;   ///< block body bytes parsed
  /// Blocks / bytes the query planner pruned — never mapped or parsed.
  /// Zero for plain (unplanned) folds; for planned folds this is the
  /// store-wide count relative to the bound QueryPlan (other carriers'
  /// blocks count as skipped — exactly what the plan saved over a full
  /// fold of the store).
  std::uint64_t blocks_skipped = 0;
  std::uint64_t bytes_skipped = 0;
  /// Observations whose 8-byte value payload the ParamKey push-down
  /// skipped instead of decoding (they still count in `rows`).
  std::uint64_t values_skipped = 0;
  /// Largest number of concurrently parsed-and-resident blocks — the
  /// realized window, i.e. what bounds transient memory.  For fold_query
  /// this is the gauge peak: the total across concurrent carrier jobs.
  std::uint64_t peak_resident_blocks = 0;
  bool crc_checked = false;  ///< per-block CRCs were verified mid-fold
  double fold_seconds = 0.0;

  /// Body bytes actually decoded: parsed bytes minus the skipped value
  /// payloads.  Strictly less than `bytes` whenever the param push-down
  /// filtered anything.
  std::uint64_t bytes_read() const { return bytes - 8 * values_skipped; }
};

/// Streaming fold engine over an opened ShardSet.  The set must outlive the
/// engine and stay open across every fold.  Folds are const; cumulative
/// stats() accumulation is mutex-guarded, so independent folds (e.g. the
/// cross-carrier scheduler's jobs) may run concurrently on one engine.
class DirectFold {
 public:
  explicit DirectFold(const ShardSet& set, FoldOptions options = {});

  const ShardSet& shards() const { return *set_; }
  const FoldOptions& options() const { return options_; }
  /// Carrier names in sorted order (the ColumnarView carrier order).
  const std::vector<std::string>& carriers() const { return names_; }

  /// Receives each of the carrier's cells exactly once, fully merged across
  /// all its runs, in ascending id order.  The record is only valid for the
  /// duration of the call.  Under a ParamKey predicate a cell whose
  /// observations were all filtered out is still delivered (with empty
  /// observations): per-cell census products — e.g. the LTE cell count
  /// under multi_priority_cell_fraction — must not shift when values are
  /// filtered.  Only cells outside the query's id range are dropped.
  using CellConsumer =
      std::function<void(std::uint32_t id, const core::CellRecord& rec)>;

  /// Stream one carrier.  An unknown carrier is an empty success (zero
  /// stats), matching the view queries' empty-result convention.  Block
  /// CRC mismatches and structural damage fail the fold; the consumer may
  /// have seen a prefix of the cells, so callers discard partial
  /// accumulation on error (every query in this module does).
  Result<FoldStats> fold_carrier(std::string_view carrier,
                                 const CellConsumer& consumer) const;

  /// Stream one planned carrier: only the plan's selected blocks parse,
  /// and the plan's wire predicates (cell range, param mask) apply.  The
  /// plan must be bound to this engine's ShardSet.  A carrier the plan did
  /// not select is an empty success.  Returned skip counts are the plan's
  /// store-wide numbers (see FoldStats).
  Result<FoldStats> fold_planned(const QueryPlan& plan,
                                 std::string_view carrier,
                                 const CellConsumer& consumer) const;

  /// Cross-carrier scheduler: fold every carrier the plan selected, as
  /// concurrent pool jobs when options().threads > 1 (largest carrier
  /// first, so stragglers start early), under ONE shared parse-window
  /// budget (options().window_blocks, split across jobs).  With one
  /// thread this is exactly the sequential per-carrier loop.
  ///
  /// `make_consumer(slot, cp)` is called serially, in sorted carrier order,
  /// once per selected carrier before any fold starts; each returned
  /// consumer is driven by exactly one job (consumers never share state
  /// unless the caller makes them).  Errors: the first failing carrier in
  /// sorted order wins, deterministically.  The returned stats aggregate
  /// all jobs; peak_resident_blocks is the concurrent total.  On success,
  /// `per_carrier` (when given) receives each slot's own fold stats —
  /// rows/cells/blocks/bytes of that carrier alone, no plan-wide skip
  /// counts — parallel to plan.carriers().
  Result<FoldStats> fold_query(
      const QueryPlan& plan,
      const std::function<CellConsumer(std::size_t slot,
                                       const CarrierQueryPlan& cp)>&
          make_consumer,
      std::vector<FoldStats>* per_carrier = nullptr) const;

  // --- ConfigDatabase / ColumnarView query equivalents -----------------------
  // Bit-identical to the same-named ColumnarView queries (property-tested in
  // test_direct_fold.cpp); each is one fold over the carrier.

  Result<stats::ValueCounts> values(const std::string& carrier,
                                    config::ParamKey key) const;

  Result<std::map<long, stats::ValueCounts>> values_grouped(
      const std::string& carrier, config::ParamKey key,
      const std::function<long(const core::CellRecord&)>& factor) const;

  Result<std::map<long, stats::ValueCounts>> values_by_context(
      const std::string& carrier, config::ParamKey key) const;

  Result<std::vector<config::ParamKey>> observed_params(
      const std::string& carrier) const;

  // --- planned overloads ------------------------------------------------------
  // Same answers as the plain overloads restricted to the query's selection
  // (property-tested against a pre-filtered in-memory oracle).  `query`'s
  // carrier list is ignored — the explicit carrier argument wins.  For the
  // single-key queries (values / values_by_context) an empty query.params
  // is narrowed to {key}: the answer provably depends on that key alone,
  // so the fold skips every other parameter's value bytes.  values_grouped
  // does NOT narrow — its factor may inspect the record's observations —
  // and observed_params cannot (it asks about all parameters); both still
  // benefit from carrier/range pruning and any explicit param predicate.

  Result<stats::ValueCounts> values(const std::string& carrier,
                                    config::ParamKey key,
                                    const Query& query) const;

  Result<std::map<long, stats::ValueCounts>> values_grouped(
      const std::string& carrier, config::ParamKey key,
      const std::function<long(const core::CellRecord&)>& factor,
      const Query& query) const;

  Result<std::map<long, stats::ValueCounts>> values_by_context(
      const std::string& carrier, config::ParamKey key,
      const Query& query) const;

  Result<std::vector<config::ParamKey>> observed_params(
      const std::string& carrier, const Query& query) const;

  /// Cumulative stats over every fold this engine has run (crc_checked and
  /// peak_resident_blocks reflect the whole history: AND and max; planner
  /// skip counts are NOT accumulated here — they belong to a plan, not the
  /// engine).  Mutex-guarded; safe to read between folds.
  FoldStats stats() const;

 private:
  struct CarrierPlan {
    std::uint32_t carrier_index = 0;
    std::vector<std::size_t> blocks;  ///< global indices, manifest order
    /// safe_floor[i] = min first_cell over blocks[i..] — the emission
    /// frontier once blocks[0..i) are parsed.  Empty without extras.
    std::vector<std::uint32_t> safe_floor;
  };

  /// One windowed streaming fold, fully parameterized: the shared engine
  /// under fold_carrier (no filter), fold_planned (plan selection + wire
  /// predicates) and fold_query's jobs (split window, shared gauge).
  struct FoldJob {
    const std::vector<std::size_t>* blocks = nullptr;
    const std::vector<std::uint32_t>* safe_floor = nullptr;
    std::string_view carrier;               ///< for error messages
    const std::vector<char>* param_mask = nullptr;  ///< empty/null = all
    std::uint32_t min_cell = 0;
    std::uint32_t max_cell = 0;
    bool filtered = false;  ///< any wire predicate active
    unsigned threads = 1;
    std::size_t window = 0;  ///< resolved; 0 only for empty block lists
    ResidencyGauge* gauge = nullptr;
  };

  FoldJob make_job(const std::vector<std::size_t>& blocks,
                   const std::vector<std::uint32_t>& safe_floor,
                   std::string_view carrier, const QueryPlan* plan) const;
  Result<FoldStats> run_fold(const FoldJob& job,
                             const CellConsumer& consumer) const;
  void accumulate(const FoldStats& fs) const;

  const ShardSet* set_;
  FoldOptions options_;
  std::vector<std::string> names_;   ///< sorted
  std::vector<CarrierPlan> plans_;   ///< parallel to names_
  mutable std::mutex stats_mutex_;
  mutable FoldStats stats_;
};

}  // namespace mmlab::store
