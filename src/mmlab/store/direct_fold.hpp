// Shard-direct query folds: answer analysis queries straight off the mapped
// MMDS v2 blocks, with no ColumnarView (or any other whole-store structure)
// materialized in between.
//
// The view path pays for generality: build_columnar parses every block,
// assembles per-carrier column arrays, and only then answers queries — so
// peak RSS carries the whole view even when the caller wants one number.
// DirectFold inverts that: it streams each carrier's blocks through a
// bounded parse window and hands every *fully merged* cell record to a
// consumer exactly once, in globally ascending cell-id order.  Queries and
// the figure entry points (store/analytics.hpp) are folds over that stream,
// so resident memory is O(window) blocks plus the answer — never the store,
// never a view.
//
// Merge contract (DESIGN.md §12): a cell's runs merge via
// CellRecord::merge_from in global (shard, block) manifest order — exactly
// what load_database and build_columnar do — so every downstream product is
// bit-identical to the view path for any thread count and window size.  The
// windowing invariant that makes streaming safe: with the manifest's
// per-block cell-id ranges (Manifest::block_extras), a merged cell may be
// emitted once its id is below every unparsed block's first_cell — ids
// within a block lie inside [first_cell, last_cell], so no later block can
// contribute another run of it.  Stores without the extras (written before
// they existed) still fold correctly; they just parse all of a carrier's
// blocks before emitting (no frontier information) and skip the per-block
// CRC (no stored block CRC).
//
// Integrity: with the extras present, each block body is checksummed right
// before parsing (FoldOptions::check_block_crc).  A mismatch — or any
// structural damage the parser trips on — fails the whole fold; a query
// never returns a partial answer built from a corrupt prefix.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "mmlab/core/database.hpp"
#include "mmlab/stats/diversity.hpp"
#include "mmlab/store/shard_set.hpp"
#include "mmlab/util/result.hpp"

namespace mmlab::store {

struct FoldOptions {
  /// Blocks within the parse window parse concurrently when != 1 (0 = all
  /// cores).  The merge is serial in manifest order, so results are
  /// identical for every value.
  unsigned threads = 1;
  /// madvise(MADV_DONTNEED) each block's mapped bytes once its last cell
  /// has been merged out.  Disable to keep the page cache warm when the
  /// same store will be re-read immediately (equality passes).
  bool release_mapped = true;
  /// Parse window in blocks (0 = auto: max(2, 2 * threads)).  Larger
  /// windows trade memory for parse parallelism.  The window is a floor on
  /// batching, not a ceiling on residency: blocks stay resident until their
  /// cells are merged out, so a layout with interleaved cell-id ranges can
  /// hold more than `window_blocks` parsed blocks alive (correctness never
  /// depends on the window).  Without manifest extras the whole carrier
  /// parses up front regardless.
  std::size_t window_blocks = 0;
  /// Checksum each block body against the manifest's per-block CRC right
  /// before parsing it.  Only effective when the store carries the extras
  /// (see FoldStats::crc_checked for what actually happened).
  bool check_block_crc = true;
};

struct FoldStats {
  std::uint64_t rows = 0;    ///< observations parsed
  std::uint64_t cells = 0;   ///< merged cells emitted (distinct ids)
  std::uint64_t blocks = 0;  ///< blocks parsed
  std::uint64_t bytes = 0;   ///< block body bytes parsed
  /// Largest number of concurrently parsed-and-resident blocks — the
  /// realized window, i.e. what bounds transient memory.
  std::uint64_t peak_resident_blocks = 0;
  bool crc_checked = false;  ///< per-block CRCs were verified mid-fold
  double fold_seconds = 0.0;
};

/// Streaming fold engine over an opened ShardSet.  The set must outlive the
/// engine and stay open across every fold.  Folds are const but accumulate
/// into stats(); run them from one thread at a time.
class DirectFold {
 public:
  explicit DirectFold(const ShardSet& set, FoldOptions options = {});

  const ShardSet& shards() const { return *set_; }
  const FoldOptions& options() const { return options_; }
  /// Carrier names in sorted order (the ColumnarView carrier order).
  const std::vector<std::string>& carriers() const { return names_; }

  /// Receives each of the carrier's cells exactly once, fully merged across
  /// all its runs, in ascending id order.  The record is only valid for the
  /// duration of the call.
  using CellConsumer =
      std::function<void(std::uint32_t id, const core::CellRecord& rec)>;

  /// Stream one carrier.  An unknown carrier is an empty success (zero
  /// stats), matching the view queries' empty-result convention.  Block
  /// CRC mismatches and structural damage fail the fold; the consumer may
  /// have seen a prefix of the cells, so callers discard partial
  /// accumulation on error (every query in this module does).
  Result<FoldStats> fold_carrier(std::string_view carrier,
                                 const CellConsumer& consumer) const;

  // --- ConfigDatabase / ColumnarView query equivalents -----------------------
  // Bit-identical to the same-named ColumnarView queries (property-tested in
  // test_direct_fold.cpp); each is one fold over the carrier.

  Result<stats::ValueCounts> values(const std::string& carrier,
                                    config::ParamKey key) const;

  Result<std::map<long, stats::ValueCounts>> values_grouped(
      const std::string& carrier, config::ParamKey key,
      const std::function<long(const core::CellRecord&)>& factor) const;

  Result<std::map<long, stats::ValueCounts>> values_by_context(
      const std::string& carrier, config::ParamKey key) const;

  Result<std::vector<config::ParamKey>> observed_params(
      const std::string& carrier) const;

  /// Cumulative stats over every fold this engine has run (crc_checked and
  /// peak_resident_blocks reflect the whole history: AND and max).
  const FoldStats& stats() const { return stats_; }

 private:
  struct CarrierPlan {
    std::uint32_t carrier_index = 0;
    std::vector<std::size_t> blocks;  ///< global indices, manifest order
    /// safe_floor[i] = min first_cell over blocks[i..] — the emission
    /// frontier once blocks[0..i) are parsed.  Empty without extras.
    std::vector<std::uint32_t> safe_floor;
  };

  const ShardSet* set_;
  FoldOptions options_;
  std::vector<std::string> names_;   ///< sorted
  std::vector<CarrierPlan> plans_;   ///< parallel to names_
  mutable FoldStats stats_;
};

}  // namespace mmlab::store
