#include "mmlab/store/query_plan.hpp"

#include <algorithm>
#include <numeric>

namespace mmlab::store {

QueryPlan::QueryPlan(const ShardSet& set, Query query)
    : set_(&set), query_(std::move(query)) {
  const Manifest& m = set.manifest();
  if (!query_.params.empty())
    param_mask_ = core::ParamKeySet(query_.params).index_mask(set.params());

  // Carrier predicate as a per-index mask (unknown names match nothing).
  std::vector<char> want(m.carriers.size(), query_.carriers.empty() ? 1 : 0);
  for (const std::string& name : query_.carriers) {
    for (std::size_t ci = 0; ci < m.carriers.size(); ++ci)
      if (m.carriers[ci] == name) want[ci] = 1;
  }

  const bool extras = m.block_extras;
  std::vector<std::vector<std::size_t>> blocks_of(m.carriers.size());
  std::vector<std::uint64_t> pruned_blocks(m.carriers.size(), 0);
  std::vector<std::uint64_t> pruned_bytes(m.carriers.size(), 0);
  std::uint64_t total_blocks = 0, total_bytes = 0;
  for (std::size_t i = 0; i < set.blocks().size(); ++i) {
    const BlockInfo& info = *set.blocks()[i].info;
    ++total_blocks;
    total_bytes += info.length;
    if (!want[info.carrier_index]) continue;
    // Cell-range pruning needs the per-block id range; without the extras
    // every carrier block stays selected and out-of-range cells drop at
    // parse time instead.
    if (extras && !info.overlaps(query_.min_cell, query_.max_cell)) {
      ++pruned_blocks[info.carrier_index];
      pruned_bytes[info.carrier_index] += info.length;
      continue;
    }
    blocks_of[info.carrier_index].push_back(i);
  }

  // Selected carriers in sorted name order — the deterministic fold order
  // every result path merges in.
  std::vector<std::uint32_t> order;
  for (std::uint32_t ci = 0; ci < m.carriers.size(); ++ci)
    if (want[ci]) order.push_back(ci);
  std::sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
    return m.carriers[a] < m.carriers[b];
  });

  carriers_.reserve(order.size());
  for (const std::uint32_t ci : order) {
    CarrierQueryPlan cp;
    cp.name = m.carriers[ci];
    cp.carrier_index = ci;
    cp.blocks = std::move(blocks_of[ci]);
    cp.blocks_pruned = pruned_blocks[ci];
    cp.bytes_pruned = pruned_bytes[ci];
    for (const std::size_t b : cp.blocks) {
      const BlockInfo& info = *set.blocks()[b].info;
      cp.rows += info.row_count;
      cp.bytes += info.length;
    }
    if (extras) {
      cp.safe_floor.resize(cp.blocks.size());
      std::uint32_t floor = std::numeric_limits<std::uint32_t>::max();
      for (std::size_t i = cp.blocks.size(); i-- > 0;) {
        floor =
            std::min(floor, set.blocks()[cp.blocks[i]].info->first_cell);
        cp.safe_floor[i] = floor;
      }
    }
    blocks_selected_ += cp.blocks.size();
    bytes_selected_ += cp.bytes;
    carriers_.push_back(std::move(cp));
  }
  blocks_skipped_ = total_blocks - blocks_selected_;
  bytes_skipped_ = total_bytes - bytes_selected_;
}

const CarrierQueryPlan* QueryPlan::find_carrier(std::string_view name) const {
  const auto it = std::lower_bound(
      carriers_.begin(), carriers_.end(), name,
      [](const CarrierQueryPlan& cp, std::string_view n) {
        return cp.name < n;
      });
  if (it == carriers_.end() || it->name != name) return nullptr;
  return &*it;
}

}  // namespace mmlab::store
