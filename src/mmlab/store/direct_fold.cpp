#include "mmlab/store/direct_fold.hpp"

#include <algorithm>
#include <chrono>
#include <deque>
#include <limits>
#include <numeric>
#include <set>
#include <stdexcept>
#include <utility>

#include "mmlab/core/cell_fold.hpp"
#include "mmlab/util/byteio.hpp"
#include "mmlab/util/crc.hpp"
#include "mmlab/util/worker_pool.hpp"

namespace mmlab::store {

namespace {

/// One parsed cell run plus the unfiltered-front facts the merge contract's
/// metadata tie-break needs under wire filtering (front_t / has_front
/// describe the run as stored, before any ParamKey predicate dropped
/// observations; unused by unfiltered folds).
struct ParsedCell {
  std::uint32_t id = 0;
  core::CellRecord rec;
  std::int64_t front_t = 0;
  bool has_front = false;
};

/// One parsed block: its cells in ascending id order plus the merge front.
/// `cells` is freed (and the mapping released) the moment the front passes
/// the end — a retired block lingers in the window only as an empty husk
/// until it reaches the deque front.
struct ParsedBlock {
  std::size_t global = 0;  ///< index into ShardSet::blocks()
  std::vector<ParsedCell> cells;
  std::size_t next = 0;
  std::uint64_t values_skipped = 0;  ///< push-down skipped value payloads

  bool exhausted() const { return next >= cells.size(); }
};

}  // namespace

DirectFold::DirectFold(const ShardSet& set, FoldOptions options)
    : set_(&set), options_(options) {
  const Manifest& m = set.manifest();
  // Sorted carrier order, same as ColumnarView.
  std::vector<std::uint32_t> order(m.carriers.size());
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
    return m.carriers[a] < m.carriers[b];
  });

  std::vector<std::vector<std::size_t>> blocks_of(m.carriers.size());
  for (std::size_t i = 0; i < set.blocks().size(); ++i)
    blocks_of[set.blocks()[i].info->carrier_index].push_back(i);

  names_.reserve(order.size());
  plans_.reserve(order.size());
  for (const std::uint32_t ci : order) {
    names_.push_back(m.carriers[ci]);
    CarrierPlan plan;
    plan.carrier_index = ci;
    plan.blocks = std::move(blocks_of[ci]);
    if (m.block_extras) {
      plan.safe_floor.resize(plan.blocks.size());
      std::uint32_t floor = std::numeric_limits<std::uint32_t>::max();
      for (std::size_t i = plan.blocks.size(); i-- > 0;) {
        floor = std::min(floor, set.blocks()[plan.blocks[i]].info->first_cell);
        plan.safe_floor[i] = floor;
      }
    }
    plans_.push_back(std::move(plan));
  }
  stats_.crc_checked = m.block_extras && options_.check_block_crc;
}

DirectFold::FoldJob DirectFold::make_job(
    const std::vector<std::size_t>& blocks,
    const std::vector<std::uint32_t>& safe_floor, std::string_view carrier,
    const QueryPlan* plan) const {
  FoldJob job;
  job.blocks = &blocks;
  job.safe_floor = &safe_floor;
  job.carrier = carrier;
  job.max_cell = std::numeric_limits<std::uint32_t>::max();
  if (plan) {
    job.param_mask = &plan->param_mask();
    job.min_cell = plan->query().min_cell;
    job.max_cell = plan->query().max_cell;
    job.filtered = plan->filtered();
  }
  unsigned threads = options_.threads == 0 ? WorkerPool::default_thread_count()
                                           : options_.threads;
  if (threads == 0) threads = 1;
  job.threads = threads;
  std::size_t window = options_.window_blocks;
  if (window == 0) window = std::max<std::size_t>(2, std::size_t{2} * threads);
  // No per-block cell-id ranges means no emission frontier: every block
  // could still contribute a run of any cell, so parse them all up front.
  if (safe_floor.empty()) window = blocks.size();
  job.window = window;
  job.gauge = options_.gauge;
  return job;
}

Result<FoldStats> DirectFold::run_fold(const FoldJob& job,
                                       const CellConsumer& consumer) const {
  using R = Result<FoldStats>;
  const auto start = std::chrono::steady_clock::now();
  const std::vector<std::size_t>& blocks = *job.blocks;
  const bool extras = set_->manifest().block_extras;
  const bool check_crc = extras && options_.check_block_crc;
  static const std::vector<char> kNoMask;
  const std::vector<char>& keep = job.param_mask ? *job.param_mask : kNoMask;

  FoldStats fs;
  fs.crc_checked = check_crc;
  std::deque<ParsedBlock> live;
  std::size_t resident = 0;  // live blocks still holding parsed cells
  std::size_t next_block = 0;

  const auto parse_one = [&](ParsedBlock& pb) {
    const BlockInfo& info = *set_->blocks()[pb.global].info;
    const auto body = set_->block_body(pb.global);
    if (check_crc && crc16_ccitt(body.data(), body.size()) != info.crc16)
      throw std::runtime_error("block CRC mismatch at shard offset " +
                               std::to_string(info.offset));
    ByteReader r(body.data(), body.size());
    std::uint64_t rows = 0;
    if (!job.filtered) {
      pb.cells.reserve(static_cast<std::size_t>(info.cell_count));
      while (r.remaining() > 0) {
        ParsedCell pc;
        pc.id = core::mmds::parse_cell(r, set_->params(), pc.rec);
        if (!pb.cells.empty() && pc.id <= pb.cells.back().id)
          throw std::runtime_error("cell ids not ascending within a block");
        rows += pc.rec.observations.size();
        pb.cells.push_back(std::move(pc));
      }
      if (pb.cells.size() != info.cell_count)
        throw std::runtime_error("block cell count disagrees with manifest");
      if (rows != info.row_count)
        throw std::runtime_error("block row count disagrees with manifest");
      if (extras && !pb.cells.empty() &&
          (pb.cells.front().id != info.first_cell ||
           pb.cells.back().id != info.last_cell))
        throw std::runtime_error("block cell-id range disagrees with manifest");
      return;
    }
    // Filtered path: every cell's wire structure is still walked (and the
    // manifest's raw counts/ranges validated against it), but only in-range
    // cells materialize and only selected params' values decode.
    std::uint64_t scanned = 0;
    std::uint32_t first_raw = 0, last_raw = 0;
    bool any = false;
    core::CellRecord rec;
    core::mmds::CellScan scan;
    while (r.remaining() > 0) {
      const std::uint32_t id = core::mmds::parse_cell_filtered(
          r, set_->params(), keep, job.min_cell, job.max_cell, rec, scan);
      if (any && id <= last_raw)
        throw std::runtime_error("cell ids not ascending within a block");
      if (!any) first_raw = id;
      any = true;
      last_raw = id;
      ++scanned;
      rows += scan.rows;
      pb.values_skipped += scan.values_skipped;
      if (id >= job.min_cell && id <= job.max_cell) {
        ParsedCell pc;
        pc.id = id;
        pc.rec = std::move(rec);
        pc.front_t = scan.front_t_ms;
        pc.has_front = scan.has_front;
        pb.cells.push_back(std::move(pc));
      }
    }
    if (scanned != info.cell_count)
      throw std::runtime_error("block cell count disagrees with manifest");
    if (rows != info.row_count)
      throw std::runtime_error("block row count disagrees with manifest");
    if (extras && any &&
        (first_raw != info.first_cell || last_raw != info.last_cell))
      throw std::runtime_error("block cell-id range disagrees with manifest");
  };

  // Parse the next `window` blocks, concurrently.  Errors are captured per
  // block and the first one in manifest order wins (the load_database
  // convention), so diagnostics are deterministic under any thread count.
  const auto parse_batch = [&]() -> std::string {
    const std::size_t n = std::min(job.window, blocks.size() - next_block);
    const std::size_t base = live.size();
    for (std::size_t k = 0; k < n; ++k) {
      live.emplace_back();
      live.back().global = blocks[next_block + k];
    }
    std::vector<std::string> errors(n);
    const auto run = [&](std::size_t k) {
      try {
        parse_one(live[base + k]);
      } catch (const std::exception& e) {
        errors[k] = e.what();
      }
    };
    if (job.threads == 1 || n <= 1) {
      for (std::size_t k = 0; k < n; ++k) run(k);
    } else {
      parallel_for_index(job.threads, n, run);
    }
    for (std::size_t k = 0; k < n; ++k) {
      if (errors[k].empty()) continue;
      const BlockInfo& info = *set_->blocks()[blocks[next_block + k]].info;
      return "block " + std::to_string(next_block + k) + " of carrier " +
             std::string(job.carrier) + " (offset " +
             std::to_string(info.offset) + "): " + errors[k];
    }
    for (std::size_t k = 0; k < n; ++k) {
      const BlockInfo& info = *set_->blocks()[blocks[next_block + k]].info;
      fs.rows += info.row_count;
      fs.bytes += info.length;
      fs.values_skipped += live[base + k].values_skipped;
    }
    fs.blocks += n;
    next_block += n;
    resident += n;
    if (job.gauge) job.gauge->add(n);
    fs.peak_resident_blocks =
        std::max<std::uint64_t>(fs.peak_resident_blocks, resident);
    return {};
  };

  // Frees a drained block's parsed cells and releases its mapping; the husk
  // itself is popped off the deque front after the merge step (never while
  // iterating it).
  const auto retire = [&](ParsedBlock& pb) {
    if (options_.release_mapped) set_->release_block(pb.global);
    pb.cells = {};  // free, not just clear
    --resident;
    if (job.gauge) job.gauge->sub(1);
  };

  core::CellRecord merged;
  while (true) {
    // Minimum front id over the window.
    std::int64_t min_id = -1;
    bool found = false;
    for (const ParsedBlock& pb : live) {
      if (pb.exhausted()) continue;
      const std::int64_t id = pb.cells[pb.next].id;
      if (!found || id < min_id) {
        min_id = id;
        found = true;
      }
    }
    // Emission frontier: every id at or below it has all its runs parsed.
    // Without extras there is no frontier information at all (safe_floor is
    // empty — indexing it here was the seed's latent out-of-bounds read):
    // nothing is emittable until every block has parsed, so the frontier
    // sits below any possible id.
    std::int64_t safe = std::numeric_limits<std::int64_t>::max();
    if (next_block < blocks.size())
      safe = job.safe_floor->empty()
                 ? std::int64_t{-1}
                 : static_cast<std::int64_t>((*job.safe_floor)[next_block]) - 1;
    if (!found || min_id > safe) {
      if (next_block >= blocks.size()) {
        if (!found) break;  // fully drained
        // Unreachable: safe is +inf once everything is parsed.
      } else {
        const std::string err = parse_batch();
        if (!err.empty()) return R::error("fold_carrier: " + err);
        continue;
      }
    }
    // Merge every front run of min_id, in window (= manifest) order — the
    // pairwise ConfigDatabase::merge the loader and view builder perform.
    // Under wire filtering, merge_from's metadata tie-break would see
    // *filtered* front timestamps, so the winner (minimal unfiltered front
    // t over non-empty runs, earliest run on ties, first run when all runs
    // are empty — exactly merge_from's pairwise outcome on unfiltered
    // runs) is recomputed from the wire facts and reapplied after the
    // merge; the observation merge itself commutes with filtering (stable
    // sort by t of a filtered concatenation = filter of the stable sort).
    bool first = true;
    spectrum::Rat m_rat{};
    std::uint32_t m_channel = 0;
    geo::Point m_position{};
    std::int64_t best_front = 0;
    bool have_front = false;
    for (ParsedBlock& pb : live) {
      if (pb.exhausted() || pb.cells[pb.next].id != min_id) continue;
      ParsedCell& pc = pb.cells[pb.next];
      if (job.filtered) {
        const bool wins =
            pc.has_front && (!have_front || pc.front_t < best_front);
        if (first || wins) {
          m_rat = pc.rec.rat;
          m_channel = pc.rec.channel;
          m_position = pc.rec.position;
        }
        if (wins) {
          have_front = true;
          best_front = pc.front_t;
        }
      }
      if (first) {
        merged = std::move(pc.rec);
        first = false;
      } else {
        merged.merge_from(std::move(pc.rec));
      }
      ++pb.next;
      if (pb.exhausted()) retire(pb);
    }
    if (job.filtered) {
      merged.rat = m_rat;
      merged.channel = m_channel;
      merged.position = m_position;
    }
    consumer(static_cast<std::uint32_t>(min_id), merged);
    ++fs.cells;
    while (!live.empty() && live.front().exhausted()) live.pop_front();
  }

  fs.fold_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  accumulate(fs);
  return fs;
}

void DirectFold::accumulate(const FoldStats& fs) const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  stats_.rows += fs.rows;
  stats_.cells += fs.cells;
  stats_.blocks += fs.blocks;
  stats_.bytes += fs.bytes;
  stats_.values_skipped += fs.values_skipped;
  stats_.peak_resident_blocks =
      std::max(stats_.peak_resident_blocks, fs.peak_resident_blocks);
  stats_.crc_checked = stats_.crc_checked && fs.crc_checked;
  stats_.fold_seconds += fs.fold_seconds;
}

FoldStats DirectFold::stats() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

Result<FoldStats> DirectFold::fold_carrier(std::string_view carrier,
                                           const CellConsumer& consumer) const {
  const auto it = std::lower_bound(names_.begin(), names_.end(), carrier);
  if (it == names_.end() || *it != carrier) return FoldStats{};
  const CarrierPlan& plan =
      plans_[static_cast<std::size_t>(it - names_.begin())];
  return run_fold(make_job(plan.blocks, plan.safe_floor, *it, nullptr),
                  consumer);
}

Result<FoldStats> DirectFold::fold_planned(const QueryPlan& plan,
                                           std::string_view carrier,
                                           const CellConsumer& consumer) const {
  using R = Result<FoldStats>;
  if (&plan.shards() != set_)
    return R::error("fold_planned: plan is bound to a different shard set");
  const CarrierQueryPlan* cp = plan.find_carrier(carrier);
  if (!cp) return FoldStats{};
  auto r = run_fold(make_job(cp->blocks, cp->safe_floor, cp->name, &plan),
                    consumer);
  if (!r) return r;
  FoldStats fs = r.value();
  fs.blocks_skipped = plan.blocks_skipped();
  fs.bytes_skipped = plan.bytes_skipped();
  return fs;
}

Result<FoldStats> DirectFold::fold_query(
    const QueryPlan& plan,
    const std::function<CellConsumer(std::size_t, const CarrierQueryPlan&)>&
        make_consumer,
    std::vector<FoldStats>* per_carrier) const {
  using R = Result<FoldStats>;
  if (&plan.shards() != set_)
    return R::error("fold_query: plan is bound to a different shard set");
  const auto start = std::chrono::steady_clock::now();
  const std::vector<CarrierQueryPlan>& cps = plan.carriers();

  // Consumers are created serially, in sorted carrier order, before any
  // fold starts — accumulator setup never races.
  std::vector<CellConsumer> consumers;
  consumers.reserve(cps.size());
  for (std::size_t i = 0; i < cps.size(); ++i)
    consumers.push_back(make_consumer(i, cps[i]));

  unsigned threads = options_.threads == 0 ? WorkerPool::default_thread_count()
                                           : options_.threads;
  if (threads == 0) threads = 1;
  std::size_t nonempty = 0;
  for (const CarrierQueryPlan& cp : cps)
    if (!cp.blocks.empty()) ++nonempty;
  const std::size_t jobs =
      std::min<std::size_t>(threads, std::max<std::size_t>(nonempty, 1));

  FoldStats agg;
  agg.crc_checked = set_->manifest().block_extras && options_.check_block_crc;
  agg.blocks_skipped = plan.blocks_skipped();
  agg.bytes_skipped = plan.bytes_skipped();

  std::vector<std::string> errors(cps.size());
  std::vector<FoldStats> per(cps.size());

  if (jobs <= 1) {
    // The sequential per-carrier loop, with intra-carrier parallelism as
    // configured — one thread means exactly the pre-scheduler behavior.
    for (std::size_t i = 0; i < cps.size(); ++i) {
      const auto r = run_fold(
          make_job(cps[i].blocks, cps[i].safe_floor, cps[i].name, &plan),
          consumers[i]);
      if (!r) return R::error(r.error_message());
      per[i] = r.value();
      agg.peak_resident_blocks =
          std::max(agg.peak_resident_blocks, per[i].peak_resident_blocks);
    }
  } else {
    // Cross-carrier concurrency replaces intra-carrier fan-out: each job
    // folds with one parse thread and a 1/jobs slice of the global window
    // budget, so total residency honors the same bound the sequential path
    // had.  Submission is largest-carrier-first (FIFO pool start order):
    // the longest fold starts immediately instead of becoming the tail.
    std::size_t budget = options_.window_blocks;
    if (budget == 0) budget = std::max<std::size_t>(2, std::size_t{2} * threads);
    const std::size_t per_window = std::max<std::size_t>(1, budget / jobs);
    ResidencyGauge local_gauge;
    ResidencyGauge* gauge = options_.gauge ? options_.gauge : &local_gauge;

    std::vector<std::size_t> order(cps.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      if (cps[a].rows != cps[b].rows) return cps[a].rows > cps[b].rows;
      return a < b;
    });

    WorkerPool pool(static_cast<unsigned>(jobs));
    for (const std::size_t i : order) {
      pool.submit([this, &plan, &cps, &consumers, &errors, &per, per_window,
                   gauge, i] {
        FoldJob job =
            make_job(cps[i].blocks, cps[i].safe_floor, cps[i].name, &plan);
        job.threads = 1;
        if (!cps[i].safe_floor.empty()) job.window = per_window;
        job.gauge = gauge;
        const auto r = run_fold(job, consumers[i]);
        if (!r) {
          errors[i] = r.error_message();
        } else {
          per[i] = r.value();
        }
      });
    }
    pool.wait_idle();
    agg.peak_resident_blocks = gauge->peak.load(std::memory_order_relaxed);
    // First failing carrier in sorted order wins, deterministically.
    for (std::size_t i = 0; i < cps.size(); ++i)
      if (!errors[i].empty()) return R::error(errors[i]);
  }

  for (std::size_t i = 0; i < cps.size(); ++i) {
    agg.rows += per[i].rows;
    agg.cells += per[i].cells;
    agg.blocks += per[i].blocks;
    agg.bytes += per[i].bytes;
    agg.values_skipped += per[i].values_skipped;
    agg.crc_checked = agg.crc_checked && per[i].crc_checked;
  }
  agg.fold_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  if (per_carrier) *per_carrier = std::move(per);
  return agg;
}

Result<stats::ValueCounts> DirectFold::values(const std::string& carrier,
                                              config::ParamKey key) const {
  stats::ValueCounts out;
  core::CellFolder folder;
  const auto r = fold_carrier(carrier, [&](std::uint32_t,
                                           const core::CellRecord& rec) {
    folder.fold(rec);
    for (const double v : folder.unique_values(key)) out.add(v);
  });
  if (!r) return Result<stats::ValueCounts>::error(r.error_message());
  return out;
}

Result<std::map<long, stats::ValueCounts>> DirectFold::values_grouped(
    const std::string& carrier, config::ParamKey key,
    const std::function<long(const core::CellRecord&)>& factor) const {
  std::map<long, stats::ValueCounts> out;
  core::CellFolder folder;
  const auto r = fold_carrier(carrier, [&](std::uint32_t,
                                           const core::CellRecord& rec) {
    folder.fold(rec);
    const auto uniq = folder.unique_values(key);
    // Same contract as the view: `factor` is only consulted for cells that
    // observed the key at all, and negative factors drop the cell.
    if (uniq.empty()) return;
    const long f = factor(rec);
    if (f < 0) return;
    stats::ValueCounts& vc = out[f];
    for (const double v : uniq) vc.add(v);
  });
  if (!r) return Result<std::map<long, stats::ValueCounts>>::error(r.error_message());
  return out;
}

Result<std::map<long, stats::ValueCounts>> DirectFold::values_by_context(
    const std::string& carrier, config::ParamKey key) const {
  std::map<long, stats::ValueCounts> out;
  core::CellFolder folder;
  const auto r = fold_carrier(carrier, [&](std::uint32_t,
                                           const core::CellRecord& rec) {
    folder.fold(rec);
    const auto* slice = folder.find(key);
    if (!slice) return;
    const auto contexts = folder.ctx_contexts();
    const auto values = folder.ctx_values();
    for (std::uint32_t j = slice->ctx_begin; j < slice->ctx_end; ++j)
      out[static_cast<long>(contexts[j])].add(values[j]);
  });
  if (!r) return Result<std::map<long, stats::ValueCounts>>::error(r.error_message());
  return out;
}

Result<std::vector<config::ParamKey>> DirectFold::observed_params(
    const std::string& carrier) const {
  std::set<config::ParamKey> seen;
  core::CellFolder folder;
  const auto r = fold_carrier(carrier, [&](std::uint32_t,
                                           const core::CellRecord& rec) {
    folder.fold(rec);
    for (const auto& slice : folder.keys()) seen.insert(slice.key);
  });
  if (!r) return Result<std::vector<config::ParamKey>>::error(r.error_message());
  return std::vector<config::ParamKey>(seen.begin(), seen.end());
}

// --- planned overloads -------------------------------------------------------

Result<stats::ValueCounts> DirectFold::values(const std::string& carrier,
                                              config::ParamKey key,
                                              const Query& query) const {
  Query q = query;
  q.carriers = {carrier};
  if (q.params.empty()) q.params = {key};
  const QueryPlan plan(*set_, std::move(q));
  stats::ValueCounts out;
  core::CellFolder folder;
  const auto r = fold_planned(plan, carrier, [&](std::uint32_t,
                                                 const core::CellRecord& rec) {
    folder.fold(rec);
    for (const double v : folder.unique_values(key)) out.add(v);
  });
  if (!r) return Result<stats::ValueCounts>::error(r.error_message());
  return out;
}

Result<std::map<long, stats::ValueCounts>> DirectFold::values_grouped(
    const std::string& carrier, config::ParamKey key,
    const std::function<long(const core::CellRecord&)>& factor,
    const Query& query) const {
  Query q = query;
  q.carriers = {carrier};
  const QueryPlan plan(*set_, std::move(q));
  std::map<long, stats::ValueCounts> out;
  core::CellFolder folder;
  const auto r = fold_planned(plan, carrier, [&](std::uint32_t,
                                                 const core::CellRecord& rec) {
    folder.fold(rec);
    const auto uniq = folder.unique_values(key);
    if (uniq.empty()) return;
    const long f = factor(rec);
    if (f < 0) return;
    stats::ValueCounts& vc = out[f];
    for (const double v : uniq) vc.add(v);
  });
  if (!r) return Result<std::map<long, stats::ValueCounts>>::error(r.error_message());
  return out;
}

Result<std::map<long, stats::ValueCounts>> DirectFold::values_by_context(
    const std::string& carrier, config::ParamKey key,
    const Query& query) const {
  Query q = query;
  q.carriers = {carrier};
  if (q.params.empty()) q.params = {key};
  const QueryPlan plan(*set_, std::move(q));
  std::map<long, stats::ValueCounts> out;
  core::CellFolder folder;
  const auto r = fold_planned(plan, carrier, [&](std::uint32_t,
                                                 const core::CellRecord& rec) {
    folder.fold(rec);
    const auto* slice = folder.find(key);
    if (!slice) return;
    const auto contexts = folder.ctx_contexts();
    const auto values = folder.ctx_values();
    for (std::uint32_t j = slice->ctx_begin; j < slice->ctx_end; ++j)
      out[static_cast<long>(contexts[j])].add(values[j]);
  });
  if (!r) return Result<std::map<long, stats::ValueCounts>>::error(r.error_message());
  return out;
}

Result<std::vector<config::ParamKey>> DirectFold::observed_params(
    const std::string& carrier, const Query& query) const {
  Query q = query;
  q.carriers = {carrier};
  const QueryPlan plan(*set_, std::move(q));
  std::set<config::ParamKey> seen;
  core::CellFolder folder;
  const auto r = fold_planned(plan, carrier, [&](std::uint32_t,
                                                 const core::CellRecord& rec) {
    folder.fold(rec);
    for (const auto& slice : folder.keys()) seen.insert(slice.key);
  });
  if (!r) return Result<std::vector<config::ParamKey>>::error(r.error_message());
  return std::vector<config::ParamKey>(seen.begin(), seen.end());
}

}  // namespace mmlab::store
