#include "mmlab/store/direct_fold.hpp"

#include <algorithm>
#include <chrono>
#include <deque>
#include <limits>
#include <numeric>
#include <set>
#include <stdexcept>
#include <utility>

#include "mmlab/core/cell_fold.hpp"
#include "mmlab/util/byteio.hpp"
#include "mmlab/util/crc.hpp"
#include "mmlab/util/worker_pool.hpp"

namespace mmlab::store {

namespace {

/// One parsed block: its cells in ascending id order plus the merge front.
/// `cells` is freed (and the mapping released) the moment the front passes
/// the end — a retired block lingers in the window only as an empty husk
/// until it reaches the deque front.
struct ParsedBlock {
  std::size_t global = 0;  ///< index into ShardSet::blocks()
  std::vector<std::pair<std::uint32_t, core::CellRecord>> cells;
  std::size_t next = 0;

  bool exhausted() const { return next >= cells.size(); }
};

}  // namespace

DirectFold::DirectFold(const ShardSet& set, FoldOptions options)
    : set_(&set), options_(options) {
  const Manifest& m = set.manifest();
  // Sorted carrier order, same as ColumnarView.
  std::vector<std::uint32_t> order(m.carriers.size());
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
    return m.carriers[a] < m.carriers[b];
  });

  std::vector<std::vector<std::size_t>> blocks_of(m.carriers.size());
  for (std::size_t i = 0; i < set.blocks().size(); ++i)
    blocks_of[set.blocks()[i].info->carrier_index].push_back(i);

  names_.reserve(order.size());
  plans_.reserve(order.size());
  for (const std::uint32_t ci : order) {
    names_.push_back(m.carriers[ci]);
    CarrierPlan plan;
    plan.carrier_index = ci;
    plan.blocks = std::move(blocks_of[ci]);
    if (m.block_extras) {
      plan.safe_floor.resize(plan.blocks.size());
      std::uint32_t floor = std::numeric_limits<std::uint32_t>::max();
      for (std::size_t i = plan.blocks.size(); i-- > 0;) {
        floor = std::min(floor, set.blocks()[plan.blocks[i]].info->first_cell);
        plan.safe_floor[i] = floor;
      }
    }
    plans_.push_back(std::move(plan));
  }
  stats_.crc_checked = m.block_extras && options_.check_block_crc;
}

Result<FoldStats> DirectFold::fold_carrier(std::string_view carrier,
                                           const CellConsumer& consumer) const {
  using R = Result<FoldStats>;
  const auto start = std::chrono::steady_clock::now();
  const auto it = std::lower_bound(names_.begin(), names_.end(), carrier);
  if (it == names_.end() || *it != carrier) return FoldStats{};
  const CarrierPlan& plan = plans_[static_cast<std::size_t>(it - names_.begin())];

  const bool extras = set_->manifest().block_extras;
  const bool check_crc = extras && options_.check_block_crc;
  unsigned threads = options_.threads == 0 ? WorkerPool::default_thread_count()
                                           : options_.threads;
  if (threads == 0) threads = 1;
  std::size_t window = options_.window_blocks;
  if (window == 0) window = std::max<std::size_t>(2, std::size_t{2} * threads);
  // No per-block cell-id ranges means no emission frontier: every block
  // could still contribute a run of any cell, so parse them all up front.
  if (!extras) window = plan.blocks.size();

  FoldStats fs;
  fs.crc_checked = check_crc;
  std::deque<ParsedBlock> live;
  std::size_t resident = 0;  // live blocks still holding parsed cells
  std::size_t next_block = 0;

  const auto parse_one = [&](ParsedBlock& pb) {
    const BlockInfo& info = *set_->blocks()[pb.global].info;
    const auto body = set_->block_body(pb.global);
    if (check_crc && crc16_ccitt(body.data(), body.size()) != info.crc16)
      throw std::runtime_error("block CRC mismatch at shard offset " +
                               std::to_string(info.offset));
    ByteReader r(body.data(), body.size());
    pb.cells.reserve(static_cast<std::size_t>(info.cell_count));
    std::uint64_t rows = 0;
    while (r.remaining() > 0) {
      core::CellRecord rec;
      const std::uint32_t id = core::mmds::parse_cell(r, set_->params(), rec);
      if (!pb.cells.empty() && id <= pb.cells.back().first)
        throw std::runtime_error("cell ids not ascending within a block");
      rows += rec.observations.size();
      pb.cells.emplace_back(id, std::move(rec));
    }
    if (pb.cells.size() != info.cell_count)
      throw std::runtime_error("block cell count disagrees with manifest");
    if (rows != info.row_count)
      throw std::runtime_error("block row count disagrees with manifest");
    if (extras && !pb.cells.empty() &&
        (pb.cells.front().first != info.first_cell ||
         pb.cells.back().first != info.last_cell))
      throw std::runtime_error("block cell-id range disagrees with manifest");
  };

  // Parse the next `window` blocks, concurrently.  Errors are captured per
  // block and the first one in manifest order wins (the load_database
  // convention), so diagnostics are deterministic under any thread count.
  const auto parse_batch = [&]() -> std::string {
    const std::size_t n = std::min(window, plan.blocks.size() - next_block);
    const std::size_t base = live.size();
    for (std::size_t k = 0; k < n; ++k) {
      live.emplace_back();
      live.back().global = plan.blocks[next_block + k];
    }
    std::vector<std::string> errors(n);
    const auto run = [&](std::size_t k) {
      try {
        parse_one(live[base + k]);
      } catch (const std::exception& e) {
        errors[k] = e.what();
      }
    };
    if (threads == 1 || n <= 1) {
      for (std::size_t k = 0; k < n; ++k) run(k);
    } else {
      parallel_for_index(threads, n, run);
    }
    for (std::size_t k = 0; k < n; ++k) {
      if (errors[k].empty()) continue;
      const BlockInfo& info = *set_->blocks()[plan.blocks[next_block + k]].info;
      return "block " + std::to_string(next_block + k) + " of carrier " +
             set_->manifest().carriers[plan.carrier_index] + " (offset " +
             std::to_string(info.offset) + "): " + errors[k];
    }
    for (std::size_t k = 0; k < n; ++k) {
      const BlockInfo& info = *set_->blocks()[plan.blocks[next_block + k]].info;
      fs.rows += info.row_count;
      fs.bytes += info.length;
    }
    fs.blocks += n;
    next_block += n;
    resident += n;
    fs.peak_resident_blocks = std::max<std::uint64_t>(
        fs.peak_resident_blocks, resident);
    return {};
  };

  // Frees a drained block's parsed cells and releases its mapping; the husk
  // itself is popped off the deque front after the merge step (never while
  // iterating it).
  const auto retire = [&](ParsedBlock& pb) {
    if (options_.release_mapped) set_->release_block(pb.global);
    pb.cells = {};  // free, not just clear
    --resident;
  };

  core::CellRecord merged;
  while (true) {
    // Minimum front id over the window.
    std::int64_t min_id = -1;
    bool found = false;
    for (const ParsedBlock& pb : live) {
      if (pb.exhausted()) continue;
      const std::int64_t id = pb.cells[pb.next].first;
      if (!found || id < min_id) {
        min_id = id;
        found = true;
      }
    }
    // Emission frontier: every id at or below it has all its runs parsed.
    const std::int64_t safe =
        next_block >= plan.blocks.size()
            ? std::numeric_limits<std::int64_t>::max()
            : static_cast<std::int64_t>(plan.safe_floor[next_block]) - 1;
    if (!found || min_id > safe) {
      if (next_block >= plan.blocks.size()) {
        if (!found) break;  // fully drained
        // Unreachable: safe is +inf once everything is parsed.
      } else {
        const std::string err = parse_batch();
        if (!err.empty()) return R::error("fold_carrier: " + err);
        continue;
      }
    }
    // Merge every front run of min_id, in window (= manifest) order — the
    // pairwise ConfigDatabase::merge the loader and view builder perform.
    bool first = true;
    for (ParsedBlock& pb : live) {
      if (pb.exhausted() || pb.cells[pb.next].first != min_id) continue;
      if (first) {
        merged = std::move(pb.cells[pb.next].second);
        first = false;
      } else {
        merged.merge_from(std::move(pb.cells[pb.next].second));
      }
      ++pb.next;
      if (pb.exhausted()) retire(pb);
    }
    consumer(static_cast<std::uint32_t>(min_id), merged);
    ++fs.cells;
    while (!live.empty() && live.front().exhausted()) live.pop_front();
  }

  fs.fold_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  stats_.rows += fs.rows;
  stats_.cells += fs.cells;
  stats_.blocks += fs.blocks;
  stats_.bytes += fs.bytes;
  stats_.peak_resident_blocks =
      std::max(stats_.peak_resident_blocks, fs.peak_resident_blocks);
  stats_.crc_checked = stats_.crc_checked && fs.crc_checked;
  stats_.fold_seconds += fs.fold_seconds;
  return fs;
}

Result<stats::ValueCounts> DirectFold::values(const std::string& carrier,
                                              config::ParamKey key) const {
  stats::ValueCounts out;
  core::CellFolder folder;
  const auto r = fold_carrier(carrier, [&](std::uint32_t,
                                           const core::CellRecord& rec) {
    folder.fold(rec);
    for (const double v : folder.unique_values(key)) out.add(v);
  });
  if (!r) return Result<stats::ValueCounts>::error(r.error_message());
  return out;
}

Result<std::map<long, stats::ValueCounts>> DirectFold::values_grouped(
    const std::string& carrier, config::ParamKey key,
    const std::function<long(const core::CellRecord&)>& factor) const {
  std::map<long, stats::ValueCounts> out;
  core::CellFolder folder;
  const auto r = fold_carrier(carrier, [&](std::uint32_t,
                                           const core::CellRecord& rec) {
    folder.fold(rec);
    const auto uniq = folder.unique_values(key);
    // Same contract as the view: `factor` is only consulted for cells that
    // observed the key at all, and negative factors drop the cell.
    if (uniq.empty()) return;
    const long f = factor(rec);
    if (f < 0) return;
    stats::ValueCounts& vc = out[f];
    for (const double v : uniq) vc.add(v);
  });
  if (!r) return Result<std::map<long, stats::ValueCounts>>::error(r.error_message());
  return out;
}

Result<std::map<long, stats::ValueCounts>> DirectFold::values_by_context(
    const std::string& carrier, config::ParamKey key) const {
  std::map<long, stats::ValueCounts> out;
  core::CellFolder folder;
  const auto r = fold_carrier(carrier, [&](std::uint32_t,
                                           const core::CellRecord& rec) {
    folder.fold(rec);
    const auto* slice = folder.find(key);
    if (!slice) return;
    const auto contexts = folder.ctx_contexts();
    const auto values = folder.ctx_values();
    for (std::uint32_t j = slice->ctx_begin; j < slice->ctx_end; ++j)
      out[static_cast<long>(contexts[j])].add(values[j]);
  });
  if (!r) return Result<std::map<long, stats::ValueCounts>>::error(r.error_message());
  return out;
}

Result<std::vector<config::ParamKey>> DirectFold::observed_params(
    const std::string& carrier) const {
  std::set<config::ParamKey> seen;
  core::CellFolder folder;
  const auto r = fold_carrier(carrier, [&](std::uint32_t,
                                           const core::CellRecord& rec) {
    folder.fold(rec);
    for (const auto& slice : folder.keys()) seen.insert(slice.key);
  });
  if (!r) return Result<std::vector<config::ParamKey>>::error(r.error_message());
  return std::vector<config::ParamKey>(seen.begin(), seen.end());
}

}  // namespace mmlab::store
