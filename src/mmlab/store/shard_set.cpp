#include "mmlab/store/shard_set.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstring>
#include <filesystem>

#include "mmlab/util/byteio.hpp"
#include "mmlab/util/crc.hpp"
#include "mmlab/util/worker_pool.hpp"

namespace mmlab::store {

// --- MappedFile --------------------------------------------------------------

MappedFile::~MappedFile() {
  if (data_) ::munmap(data_, size_);
}

MappedFile::MappedFile(MappedFile&& other) noexcept
    : data_(other.data_), size_(other.size_) {
  other.data_ = nullptr;
  other.size_ = 0;
}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    if (data_) ::munmap(data_, size_);
    data_ = other.data_;
    size_ = other.size_;
    other.data_ = nullptr;
    other.size_ = 0;
  }
  return *this;
}

Result<MappedFile> MappedFile::open(const std::string& path) {
  using R = Result<MappedFile>;
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return R::error("MappedFile: cannot open " + path);
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return R::error("MappedFile: cannot stat " + path);
  }
  MappedFile f;
  f.size_ = static_cast<std::size_t>(st.st_size);
  if (f.size_ > 0) {
    void* p = ::mmap(nullptr, f.size_, PROT_READ, MAP_PRIVATE, fd, 0);
    if (p == MAP_FAILED) {
      ::close(fd);
      return R::error("MappedFile: mmap failed for " + path);
    }
    f.data_ = static_cast<std::uint8_t*>(p);
  }
  ::close(fd);  // the mapping keeps the file referenced
  return f;
}

void MappedFile::release(std::size_t offset, std::size_t length) const {
  if (!data_) return;
  const std::size_t page = static_cast<std::size_t>(::sysconf(_SC_PAGESIZE));
  // Round inward: partial edge pages may still back a neighbouring block.
  const std::size_t begin = (offset + page - 1) & ~(page - 1);
  const std::size_t end = (offset + length) & ~(page - 1);
  if (end > begin) ::madvise(data_ + begin, end - begin, MADV_DONTNEED);
}

// --- ShardSet ----------------------------------------------------------------

Result<ShardSet> ShardSet::open(std::string dir) {
  using R = Result<ShardSet>;
  auto manifest = read_manifest(dir);
  if (!manifest) return R::error(manifest.error_message());

  ShardSet set;
  set.dir_ = std::move(dir);
  set.manifest_ = std::move(manifest).take();

  set.params_.reserve(set.manifest_.params.size());
  for (const auto& name : set.manifest_.params) {
    const auto key = config::parse_param_name(name);
    if (!key)
      return R::error("ShardSet: unknown parameter in manifest: " + name);
    set.params_.push_back(*key);
  }

  set.maps_.reserve(set.manifest_.shards.size());
  for (const auto& shard : set.manifest_.shards) {
    const std::string path =
        (std::filesystem::path(set.dir_) / shard.filename).string();
    auto mapped = MappedFile::open(path);
    if (!mapped) return R::error(mapped.error_message());
    MappedFile f = std::move(mapped).take();
    if (f.size() != shard.file_size)
      return R::error("ShardSet: " + shard.filename + " is " +
                      std::to_string(f.size()) + " bytes, manifest says " +
                      std::to_string(shard.file_size));
    if (f.size() < sizeof(kShardMagic) ||
        std::memcmp(f.data(), kShardMagic, sizeof(kShardMagic)) != 0)
      return R::error("ShardSet: bad shard magic in " + shard.filename);
    set.maps_.push_back(std::move(f));
  }

  for (std::uint32_t s = 0; s < set.manifest_.shards.size(); ++s)
    for (const auto& b : set.manifest_.shards[s].blocks)
      set.blocks_.push_back({s, &b});
  return set;
}

std::span<const std::uint8_t> ShardSet::block_body(std::size_t index) const {
  const BlockRef& ref = blocks_[index];
  return {maps_[ref.shard].data() + ref.info->offset,
          static_cast<std::size_t>(ref.info->length)};
}

void ShardSet::release_block(std::size_t index) const {
  const BlockRef& ref = blocks_[index];
  maps_[ref.shard].release(static_cast<std::size_t>(ref.info->offset),
                           static_cast<std::size_t>(ref.info->length));
}

Result<std::uint64_t> ShardSet::verify() const {
  using R = Result<std::uint64_t>;
  std::uint64_t total = 0;
  for (const auto& shard : manifest_.shards) {
    const std::string path =
        (std::filesystem::path(dir_) / shard.filename).string();
    try {
      BufferedFileReader in(path);
      std::uint16_t state = kCrc16CcittInit;
      std::uint64_t bytes = 0;
      std::vector<std::uint8_t> buf(1u << 20);
      std::size_t n;
      while ((n = in.read(buf.data(), buf.size())) > 0) {
        state = crc16_ccitt_update(state, buf.data(), n);
        bytes += n;
      }
      if (bytes != shard.file_size)
        return R::error("verify: " + shard.filename + " is " +
                        std::to_string(bytes) + " bytes, manifest says " +
                        std::to_string(shard.file_size));
      if (crc16_ccitt_finalize(state) != shard.crc16)
        return R::error("verify: CRC mismatch in " + shard.filename);
      total += bytes;
    } catch (const std::exception& e) {
      return R::error("verify: " + std::string(e.what()));
    }
  }
  return total;
}

// --- load_database -----------------------------------------------------------

namespace {

/// Parse one block body into `out`; validates against the manifest counts.
std::size_t parse_block_body(const ShardSet& set, std::size_t index,
                             core::ConfigDatabase& out) {
  const BlockInfo& info = *set.blocks()[index].info;
  const std::span<const std::uint8_t> body = set.block_body(index);
  const std::string& carrier =
      set.manifest().carriers[info.carrier_index];
  ByteReader r(body.data(), body.size());
  std::size_t rows = 0;
  std::uint64_t cells = 0;
  while (r.remaining() > 0) {
    rows += core::mmds::parse_cell(r, carrier, set.params(), out);
    ++cells;
  }
  if (cells != info.cell_count || rows != info.row_count)
    throw std::runtime_error("block " + std::to_string(index) +
                             " cell/row counts disagree with manifest");
  return rows;
}

}  // namespace

Result<core::LoadStats> load_database(const ShardSet& set,
                                      core::ConfigDatabase& db,
                                      unsigned threads) {
  using R = Result<core::LoadStats>;
  const std::size_t n = set.blocks().size();
  core::LoadStats stats;
  try {
    // Always block-private databases merged in manifest order — never a
    // direct parse into `db` — so the result is the documented chunk-merge
    // for every thread count, including 1.
    std::vector<core::ConfigDatabase> parts(n);
    std::vector<std::string> errors(n);
    const auto parse_one = [&](std::size_t i) {
      try {
        parse_block_body(set, i, parts[i]);
      } catch (const std::exception& e) {
        errors[i] = e.what();
      }
    };
    if (threads == 1 || n <= 1) {
      for (std::size_t i = 0; i < n; ++i) parse_one(i);
    } else {
      parallel_for_index(threads, n, parse_one);
    }
    for (const auto& err : errors)
      if (!err.empty()) return R::error("load_database: " + err);
    for (std::size_t i = 0; i < n; ++i) {
      db.merge(std::move(parts[i]));
      stats.rows += static_cast<std::size_t>(set.blocks()[i].info->row_count);
    }
    return stats;
  } catch (const std::exception& e) {
    return R::error("load_database: " + std::string(e.what()));
  }
}

}  // namespace mmlab::store
