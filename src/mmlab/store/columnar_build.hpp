// Out-of-core ColumnarView build over a mapped MMDS v2 store.
//
// The in-memory path is database -> ColumnarView; this one goes straight
// from mapped shard blocks to a view without ever materializing the
// database.  Carriers assemble serially in name order; within each
// carrier, the DirectFold engine (store/direct_fold.hpp) parses blocks
// concurrently through its bounded window and merges each cell's runs via
// CellRecord::merge_from in global (shard, block) manifest order — exactly
// what ConfigDatabase::merge would have done.  The merged record feeds the
// same CarrierAssembler the in-memory constructor uses, so every
// precomputed query product is bit-identical to
// ColumnarView(load_database(store)) by construction (property-tested in
// test_store.cpp), and identical for every thread count (the merge is
// serial; only block parsing fans out).
//
// Memory bounds: the raw per-observation columns are NOT materialized
// (keep_columns = false) — no analysis entry point reads them, only the
// precomputed spans/uniques/context pairs — so view size scales with
// distinct values, not rows.  Transient state is the fold engine's parse
// window plus one carrier under assembly, and consumed blocks are madvised
// away as soon as their last cell merges out, so peak RSS is bounded by
// (parse window + largest carrier's view), not by store size.
#pragma once

#include <cstdint>
#include <string>

#include "mmlab/core/columnar.hpp"
#include "mmlab/store/shard_set.hpp"
#include "mmlab/util/result.hpp"

namespace mmlab::store {

struct BuildOptions {
  /// Blocks parse concurrently within each carrier when != 1 (0 = all
  /// cores).  Block count scales with data while carrier count does not,
  /// so the fan-out is effective even on few-carrier countrywide stores.
  /// The run merge stays serial in manifest order, so the view is
  /// identical for any value.
  unsigned threads = 1;
  /// madvise(MADV_DONTNEED) each consumed block region as soon as its last
  /// cell merges out.  Disable to keep the page cache warm when the same
  /// store will be re-read (e.g. a load_database equality pass).
  bool release_mapped = true;
};

struct BuildStats {
  std::uint64_t rows = 0;
  std::uint64_t cells = 0;  ///< distinct (carrier, cell id) pairs
  std::uint64_t blocks = 0;
  std::uint64_t shards = 0;
  double build_seconds = 0.0;
  /// Approximate heap footprint of the finished view's columns.
  std::uint64_t view_bytes_estimate = 0;
};

/// A ColumnarView assembled out-of-core, plus how it got built.  The view
/// owns its cell metadata (Carrier::owned_meta), so it stays valid after
/// the ShardSet is closed.
struct StoreView {
  core::ColumnarView view;
  BuildStats stats;
};

Result<StoreView> build_columnar(const ShardSet& set, BuildOptions options = {});

}  // namespace mmlab::store
