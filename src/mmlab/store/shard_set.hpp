// Mapped MMDS v2 read path.
//
// ShardSet::open parses only the manifest, resolves the parameter table
// against the registry, and mmaps every shard (read-only, MAP_PRIVATE) —
// no shard byte is touched until a block is actually read, so opening a
// multi-GB store is O(manifest).  Mapping lifetime rule: block spans
// (block_body) alias the mappings and die with the ShardSet; the
// out-of-core columnar build copies everything it keeps, which is what
// lets it madvise consumed regions away mid-build.
//
// Integrity is two-layered: the manifest carries its own CRC trailer
// (checked at open) plus a per-shard whole-file CRC, checked by verify()
// with a streaming reader — never via the mapping, so a verify pass does
// not fault the whole store into RSS.
//
// Concurrency: an opened ShardSet is immutable — every accessor below is a
// const read over state fixed at open(), and block_body/release_block touch
// only the read-only mappings (release is a stateless madvise; concurrent
// calls for any mix of blocks are safe).  The cross-carrier fold scheduler
// (store::DirectFold::fold_query) relies on exactly this: many carrier
// folds share one ShardSet, each parsing and releasing disjoint block sets
// from pool threads with no locking here.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "mmlab/core/database.hpp"
#include "mmlab/core/dataset_io.hpp"
#include "mmlab/store/mmds2.hpp"
#include "mmlab/util/result.hpp"

namespace mmlab::store {

/// Read-only private file mapping (move-only; unmapped on destruction).
class MappedFile {
 public:
  MappedFile() = default;
  ~MappedFile();
  MappedFile(MappedFile&& other) noexcept;
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  static Result<MappedFile> open(const std::string& path);

  const std::uint8_t* data() const { return data_; }
  std::size_t size() const { return size_; }

  /// Tell the kernel the byte range is done with (rounded inward to whole
  /// pages; advisory — a later read simply refaults from the file).
  void release(std::size_t offset, std::size_t length) const;

 private:
  std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
};

/// An opened store: parsed manifest + resolved param keys + one mapping per
/// shard, in manifest order.  Blocks are addressed by flat index in global
/// (shard, block) order — the canonical merge order every reader uses.
class ShardSet {
 public:
  /// Parse the manifest, resolve parameters, map shards, and cross-check
  /// mapped sizes against the manifest.  Does NOT checksum shard payloads
  /// (see verify()).
  static Result<ShardSet> open(std::string dir);

  const std::string& dir() const { return dir_; }
  const Manifest& manifest() const { return manifest_; }
  const std::vector<config::ParamKey>& params() const { return params_; }

  /// Global block table, flattened in (shard, block) order.
  struct BlockRef {
    std::uint32_t shard = 0;
    const BlockInfo* info = nullptr;
  };
  const std::vector<BlockRef>& blocks() const { return blocks_; }

  /// The mapped body bytes of global block `index`.
  std::span<const std::uint8_t> block_body(std::size_t index) const;
  /// Advise the kernel the block's bytes are consumed.
  void release_block(std::size_t index) const;

  /// Stream every shard file through the CRC, comparing against the
  /// manifest.  Returns total payload bytes checked, or the first mismatch.
  Result<std::uint64_t> verify() const;

  std::uint64_t total_rows() const { return manifest_.total_rows(); }

 private:
  std::string dir_;
  Manifest manifest_;
  std::vector<config::ParamKey> params_;
  std::vector<MappedFile> maps_;  ///< parallel to manifest_.shards
  std::vector<BlockRef> blocks_;
};

/// Materialize the whole store as an in-memory ConfigDatabase: every block
/// parses into a private database (concurrently for threads != 1; 0 = all
/// cores), then the per-block databases merge in global block order — so
/// the result is identical for every thread count, and identical to the
/// chunk-merge contract the streaming writer documents.
Result<core::LoadStats> load_database(const ShardSet& set,
                                      core::ConfigDatabase& db,
                                      unsigned threads = 1);

}  // namespace mmlab::store
