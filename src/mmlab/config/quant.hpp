// 3GPP quantization grids.
//
// Every broadcast parameter lives on a standardized grid (TS 36.331 §6.3):
// q-RxLevMin in 2 dB steps, hysteresis and a3-offset in 0.5 dB steps,
// time-to-trigger from a 16-entry enum, etc.  The RRC codec encodes the grid
// *index*; the generator only produces on-grid values.  encode_* throws
// std::invalid_argument for off-grid input — catching a generator bug at the
// encode boundary instead of corrupting the dataset.
#pragma once

#include <cstdint>
#include <vector>

#include "mmlab/util/clock.hpp"

namespace mmlab::config::quant {

// --- linear grids ---------------------------------------------------------

/// q-RxLevMin: IE -70..-22, actual dBm = 2 * IE. 6 bits.
std::uint64_t encode_q_rxlevmin(double dbm);
double decode_q_rxlevmin(std::uint64_t ie);

/// RSRP threshold: IE 0..97, actual dBm = IE - 140. 7 bits.
std::uint64_t encode_rsrp_threshold(double dbm);
double decode_rsrp_threshold(std::uint64_t ie);

/// RSRQ threshold: IE 0..34, actual dB = IE/2 - 19.5. 6 bits.
std::uint64_t encode_rsrq_threshold(double db);
double decode_rsrq_threshold(std::uint64_t ie);

/// Hysteresis: IE 0..30, actual dB = IE / 2. 5 bits.
std::uint64_t encode_hysteresis(double db);
double decode_hysteresis(std::uint64_t ie);

/// a3-Offset: IE -30..30, actual dB = IE / 2. 6 bits (offset-binary).
std::uint64_t encode_a3_offset(double db);
double decode_a3_offset(std::uint64_t ie);

/// s-IntraSearch / s-NonIntraSearch / threshX: IE 0..31, dB = 2 * IE. 5 bits.
std::uint64_t encode_search_threshold(double db);
double decode_search_threshold(std::uint64_t ie);

/// t-Reselection: IE 0..7 seconds. 3 bits.
std::uint64_t encode_t_reselection(Millis ms);
Millis decode_t_reselection(std::uint64_t ie);

// --- enumerated grids -----------------------------------------------------

/// q-Hyst enum (TS 36.331 SIB3): {0,1,2,3,4,5,6,8,10,12,14,16,18,20,22,24} dB.
const std::vector<double>& q_hyst_grid();
std::uint64_t encode_q_hyst(double db);
double decode_q_hyst(std::uint64_t ie);

/// timeToTrigger enum: {0,40,64,80,100,128,160,256,320,480,512,640,1024,
/// 1280,2560,5120} ms. 4 bits.
const std::vector<Millis>& ttt_grid();
std::uint64_t encode_ttt(Millis ms);
Millis decode_ttt(std::uint64_t ie);

/// reportInterval enum: {120,240,480,640,1024,2048,5120,10240 ms,
/// 1,6,12,30,60 min}. 4 bits.
const std::vector<Millis>& report_interval_grid();
std::uint64_t encode_report_interval(Millis ms);
Millis decode_report_interval(std::uint64_t ie);

/// q-OffsetRange enum (TS 36.331): 31 values
/// {-24,-22,...,-6,-5,...,5,6,8,...,24} dB. 5 bits.
const std::vector<double>& q_offset_grid();
std::uint64_t encode_q_offset(double db);
double decode_q_offset(std::uint64_t ie);

/// allowedMeasBandwidth enum: {1.4, 3, 5, 10, 15, 20} MHz. 3 bits.
const std::vector<double>& meas_bandwidth_grid();
std::uint64_t encode_meas_bandwidth(double mhz);
double decode_meas_bandwidth(std::uint64_t ie);

}  // namespace mmlab::config::quant
