// Generic parameter registry.
//
// The large-scale analyses (Figs 13-22) treat a configuration as a bag of
// (parameter, value) observations per cell, uniformly across 66 LTE and 91
// legacy-RAT parameters.  ParamKey identifies a parameter; extract_parameters
// flattens a decoded CellConfig into observations.  Everything downstream
// (diversity, dependence, temporal dynamics) works on this representation
// only — it never sees the typed config structs.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "mmlab/config/cell_config.hpp"
#include "mmlab/spectrum/rat.hpp"

namespace mmlab::config {

/// Semantic identifiers for the LTE parameters our measurement observes.
/// Values are stable; they index Fig 16's x-axis.
enum class ParamId : std::uint16_t {
  // --- serving-cell idle parameters (SIB3) ---
  kServingPriority = 0,   ///< Ps
  kQHyst,                 ///< Hs
  kQRxLevMin,             ///< ∆min
  kSIntraSearch,          ///< Θintra
  kSNonIntraSearch,       ///< Θnonintra
  kThreshServingLow,      ///< Θ(s)lower
  kTReselection,          ///< Treselect
  kTHigherMeas,           ///< higher-priority measurement period
  kQOffsetEqual,          ///< ∆equal
  // --- neighbour-frequency parameters (SIB5/6/7/8) ---
  kNeighborPriority,      ///< Pc (per frequency)
  kNeighborQRxLevMin,
  kThreshXHigh,           ///< Θ(c)higher
  kThreshXLow,            ///< Θ(c)lower
  kQOffsetFreq,           ///< ∆freq
  kMeasBandwidth,
  kNeighborTReselection,
  // --- reporting-event parameters (measConfig) ---
  kA1Threshold, kA1Hysteresis, kA1Ttt,
  kA2Threshold, kA2Hysteresis, kA2Ttt,
  kA3Offset, kA3Hysteresis, kA3Ttt,
  kA4Threshold, kA4Hysteresis, kA4Ttt,
  kA5Threshold1,          ///< ΘA5,S (serving)
  kA5Threshold2,          ///< ΘA5,C (candidate)
  kA5Hysteresis, kA5Ttt,
  kB1Threshold, kB1Hysteresis, kB1Ttt,
  kB2Threshold1, kB2Threshold2, kB2Hysteresis, kB2Ttt,
  kReportInterval,        ///< TreportInterval
  kReportAmount,
  kPeriodicInterval,      ///< period of configured periodic reporting

  kCount,  // sentinel
};

constexpr std::uint16_t kLteParamCount =
    static_cast<std::uint16_t>(ParamId::kCount);

/// RAT-qualified parameter identifier. For LTE, `id` is a ParamId; for
/// legacy RATs it indexes that RAT's standardized parameter list
/// (0 = priority, 1 = q_rxlevmin, 2 = q_hyst, 3 = t_reselection, 4+ = extra).
struct ParamKey {
  spectrum::Rat rat = spectrum::Rat::kLte;
  std::uint16_t id = 0;

  auto operator<=>(const ParamKey&) const = default;
};

inline ParamKey lte_param(ParamId id) {
  return ParamKey{spectrum::Rat::kLte, static_cast<std::uint16_t>(id)};
}

/// Human-readable parameter name ("Ps", "ThA5S", "umts[7]", ...).
std::string param_name(ParamKey key);

/// Inverse of param_name; nullopt for unknown names.
std::optional<ParamKey> parse_param_name(const std::string& name);

/// Active-state parameters are those signalled in measConfig (reporting
/// events); everything broadcast in SIBs is an idle-state parameter.  The
/// split drives Fig 13's idle-vs-active temporal-dynamics comparison.
bool is_active_state_param(ParamKey key);

/// One flattened observation of one parameter at one cell.
///
/// `context` disambiguates parameters that occur several times per cell:
/// for per-neighbour-frequency parameters it is the target channel number
/// (Fig 18's bottom panel groups candidate priorities by that channel);
/// -1 for single-occurrence parameters.
struct ParamObservation {
  ParamKey key;
  double value = 0.0;
  std::int64_t context = -1;
};

/// Flatten an LTE cell configuration into parameter observations. Event
/// parameters appear once per configured event; per-frequency parameters
/// once per neighbour frequency.
std::vector<ParamObservation> extract_parameters(const CellConfig& cfg);

/// Flatten a legacy-RAT configuration.
std::vector<ParamObservation> extract_parameters(const LegacyCellConfig& cfg);

}  // namespace mmlab::config
