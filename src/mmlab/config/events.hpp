// Measurement-reporting event configuration (TS 36.331 §5.5.4, paper §2.2).
//
// LTE defines events A1-A6 (intra-RAT), B1-B2 (inter-RAT) and C1-C2 (CSI-RS);
// the paper observes A1-A5, B1, B2 plus carrier-configured periodic
// reporting (P).  Each configured event carries thresholds, a hysteresis, an
// offset and a time-to-trigger, all broadcast to the UE in measConfig.
#pragma once

#include <string_view>

#include "mmlab/util/clock.hpp"
#include "mmlab/util/units.hpp"

namespace mmlab::config {

enum class EventType : std::uint8_t {
  kA1,  ///< serving becomes better than threshold
  kA2,  ///< serving becomes worse than threshold
  kA3,  ///< neighbour becomes offset better than serving
  kA4,  ///< neighbour becomes better than threshold
  kA5,  ///< serving worse than thresh1 AND neighbour better than thresh2
  kA6,  ///< neighbour becomes offset better than SCell (CA; never observed)
  kB1,  ///< inter-RAT neighbour becomes better than threshold
  kB2,  ///< serving worse than thresh1 AND inter-RAT neighbour better than thresh2
  kC1,  ///< CSI-RS resource better than threshold (never observed)
  kC2,  ///< CSI-RS resource offset better than reference (never observed)
  kPeriodic,  ///< periodic reporting of strongest cells ("P" in the paper)
};

constexpr std::string_view event_name(EventType e) {
  switch (e) {
    case EventType::kA1: return "A1";
    case EventType::kA2: return "A2";
    case EventType::kA3: return "A3";
    case EventType::kA4: return "A4";
    case EventType::kA5: return "A5";
    case EventType::kA6: return "A6";
    case EventType::kB1: return "B1";
    case EventType::kB2: return "B2";
    case EventType::kC1: return "C1";
    case EventType::kC2: return "C2";
    case EventType::kPeriodic: return "P";
  }
  return "?";
}

/// Which radio quantity the event thresholds compare (paper §2.2: RSRP and
/// RSRQ have disjoint ranges and separate configuration grids).
enum class SignalMetric : std::uint8_t { kRsrp, kRsrq };

constexpr std::string_view metric_name(SignalMetric m) {
  return m == SignalMetric::kRsrp ? "RSRP" : "RSRQ";
}

/// One entry of the measConfig report-configuration list.
///
/// Thresholds are stored in engineering units: dBm for RSRP metrics, dB for
/// RSRQ.  `threshold1` is the serving-cell threshold (A1/A2/A5/B2),
/// `threshold2` the neighbour threshold (A4 uses threshold1; A5/B2 use
/// threshold2 for the neighbour).  `offset_db` is the A3/A6 offset (may be
/// negative — the paper observes -1 dB in T-Mobile).
struct EventConfig {
  EventType type = EventType::kA3;
  SignalMetric metric = SignalMetric::kRsrp;
  double threshold1 = 0.0;
  double threshold2 = 0.0;
  double offset_db = 0.0;
  double hysteresis_db = 0.0;
  Millis time_to_trigger = 0;   ///< TTT: condition must hold this long
  Millis report_interval = 0;   ///< 0 = single report on trigger
  int report_amount = 1;        ///< max reports after trigger; 16 = infinity

  bool operator==(const EventConfig&) const = default;
};

/// True for the event types that compare a neighbour against thresholds or
/// against the serving cell (i.e. can nominate a handoff target).
constexpr bool event_involves_neighbor(EventType e) {
  switch (e) {
    case EventType::kA3:
    case EventType::kA4:
    case EventType::kA5:
    case EventType::kA6:
    case EventType::kB1:
    case EventType::kB2:
    case EventType::kPeriodic:
      return true;
    default:
      return false;
  }
}

/// True for inter-RAT events.
constexpr bool event_is_inter_rat(EventType e) {
  return e == EventType::kB1 || e == EventType::kB2;
}

}  // namespace mmlab::config
