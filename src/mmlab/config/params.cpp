#include "mmlab/config/params.hpp"

#include <array>
#include <cctype>
#include <exception>

namespace mmlab::config {

namespace {

constexpr std::array<const char*, kLteParamCount> kLteNames = {
    "Ps",            // kServingPriority
    "Hs",            // kQHyst
    "Dmin",          // kQRxLevMin
    "ThIntra",       // kSIntraSearch
    "ThNonIntra",    // kSNonIntraSearch
    "ThSrvLow",      // kThreshServingLow
    "Tresel",        // kTReselection
    "ThiMeas",       // kTHigherMeas
    "Dequal",        // kQOffsetEqual
    "Pc",            // kNeighborPriority
    "DminNbr",       // kNeighborQRxLevMin
    "ThXHigh",       // kThreshXHigh
    "ThXLow",        // kThreshXLow
    "Dfreq",         // kQOffsetFreq
    "MeasBw",        // kMeasBandwidth
    "TreselNbr",     // kNeighborTReselection
    "ThA1", "HA1", "TttA1",
    "ThA2", "HA2", "TttA2",
    "DA3", "HA3", "TttA3",
    "ThA4", "HA4", "TttA4",
    "ThA5S",         // kA5Threshold1
    "ThA5C",         // kA5Threshold2
    "HA5", "TttA5",
    "ThB1", "HB1", "TttB1",
    "ThB2S", "ThB2C", "HB2", "TttB2",
    "TreportInt",    // kReportInterval
    "ReportAmt",     // kReportAmount
    "PeriodInt",     // kPeriodicInterval
};

constexpr const char* legacy_semantic_name(std::uint16_t id) {
  switch (id) {
    case 0: return "prio";
    case 1: return "qRxLevMin";
    case 2: return "qHyst";
    case 3: return "Tresel";
    default: return nullptr;
  }
}

}  // namespace

std::string param_name(ParamKey key) {
  if (key.rat == spectrum::Rat::kLte) {
    if (key.id < kLteParamCount) return kLteNames[key.id];
    return "lte[" + std::to_string(key.id) + "]";
  }
  std::string prefix(spectrum::rat_name(key.rat));
  for (char& c : prefix) c = static_cast<char>(std::tolower(c));
  if (const char* s = legacy_semantic_name(key.id))
    return prefix + "." + s;
  return prefix + "[" + std::to_string(key.id) + "]";
}

std::optional<ParamKey> parse_param_name(const std::string& name) {
  for (std::uint16_t i = 0; i < kLteParamCount; ++i)
    if (name == kLteNames[i]) return ParamKey{spectrum::Rat::kLte, i};
  for (const auto rat : spectrum::kAllRats) {
    if (rat == spectrum::Rat::kLte) continue;
    std::string prefix(spectrum::rat_name(rat));
    for (char& c : prefix) c = static_cast<char>(std::tolower(c));
    if (name.rfind(prefix, 0) != 0) continue;
    const std::string rest = name.substr(prefix.size());
    if (rest.size() >= 2 && rest.front() == '.') {
      for (std::uint16_t i = 0; i < 4; ++i)
        if (rest.substr(1) == legacy_semantic_name(i))
          return ParamKey{rat, i};
      return std::nullopt;
    }
    if (rest.size() >= 3 && rest.front() == '[' && rest.back() == ']') {
      try {
        const int idx = std::stoi(rest.substr(1, rest.size() - 2));
        if (idx >= 0 && idx < 4096)
          return ParamKey{rat, static_cast<std::uint16_t>(idx)};
      } catch (const std::exception&) {
        return std::nullopt;
      }
    }
  }
  return std::nullopt;
}

bool is_active_state_param(ParamKey key) {
  if (key.rat != spectrum::Rat::kLte) return false;
  return key.id >= static_cast<std::uint16_t>(ParamId::kA1Threshold) &&
         key.id < kLteParamCount;
}

namespace {

void emit_event_params(const EventConfig& ev,
                       std::vector<ParamObservation>& out) {
  auto add = [&](ParamId id, double v) {
    out.push_back({lte_param(id), v});
  };
  switch (ev.type) {
    case EventType::kA1:
      add(ParamId::kA1Threshold, ev.threshold1);
      add(ParamId::kA1Hysteresis, ev.hysteresis_db);
      add(ParamId::kA1Ttt, static_cast<double>(ev.time_to_trigger));
      break;
    case EventType::kA2:
      add(ParamId::kA2Threshold, ev.threshold1);
      add(ParamId::kA2Hysteresis, ev.hysteresis_db);
      add(ParamId::kA2Ttt, static_cast<double>(ev.time_to_trigger));
      break;
    case EventType::kA3:
      add(ParamId::kA3Offset, ev.offset_db);
      add(ParamId::kA3Hysteresis, ev.hysteresis_db);
      add(ParamId::kA3Ttt, static_cast<double>(ev.time_to_trigger));
      break;
    case EventType::kA4:
      add(ParamId::kA4Threshold, ev.threshold1);
      add(ParamId::kA4Hysteresis, ev.hysteresis_db);
      add(ParamId::kA4Ttt, static_cast<double>(ev.time_to_trigger));
      break;
    case EventType::kA5:
      add(ParamId::kA5Threshold1, ev.threshold1);
      add(ParamId::kA5Threshold2, ev.threshold2);
      add(ParamId::kA5Hysteresis, ev.hysteresis_db);
      add(ParamId::kA5Ttt, static_cast<double>(ev.time_to_trigger));
      break;
    case EventType::kB1:
      add(ParamId::kB1Threshold, ev.threshold1);
      add(ParamId::kB1Hysteresis, ev.hysteresis_db);
      add(ParamId::kB1Ttt, static_cast<double>(ev.time_to_trigger));
      break;
    case EventType::kB2:
      add(ParamId::kB2Threshold1, ev.threshold1);
      add(ParamId::kB2Threshold2, ev.threshold2);
      add(ParamId::kB2Hysteresis, ev.hysteresis_db);
      add(ParamId::kB2Ttt, static_cast<double>(ev.time_to_trigger));
      break;
    case EventType::kPeriodic:
      add(ParamId::kPeriodicInterval, static_cast<double>(ev.report_interval));
      break;
    default:
      break;  // A6/C1/C2 never configured by the generator
  }
  if (ev.type != EventType::kPeriodic) {
    if (ev.report_interval > 0)
      add(ParamId::kReportInterval, static_cast<double>(ev.report_interval));
    add(ParamId::kReportAmount, static_cast<double>(ev.report_amount));
  }
}

}  // namespace

std::vector<ParamObservation> extract_parameters(const CellConfig& cfg) {
  std::vector<ParamObservation> out;
  out.reserve(16 + 8 * cfg.neighbor_freqs.size() +
              5 * cfg.report_configs.size());
  auto add = [&](ParamId id, double v) {
    out.push_back({lte_param(id), v});
  };
  const auto& s = cfg.serving;
  add(ParamId::kServingPriority, s.priority);
  add(ParamId::kQHyst, s.q_hyst_db);
  add(ParamId::kQRxLevMin, s.q_rxlevmin_dbm);
  add(ParamId::kSIntraSearch, s.s_intrasearch_db);
  add(ParamId::kSNonIntraSearch, s.s_nonintrasearch_db);
  add(ParamId::kThreshServingLow, s.thresh_serving_low_db);
  add(ParamId::kTReselection, static_cast<double>(s.t_reselection));
  add(ParamId::kTHigherMeas, static_cast<double>(s.t_higher_meas));
  add(ParamId::kQOffsetEqual, cfg.q_offset_equal_db);
  for (const auto& nf : cfg.neighbor_freqs) {
    auto add_freq = [&](ParamId id, double v) {
      out.push_back({lte_param(id), v,
                     static_cast<std::int64_t>(nf.channel.number)});
    };
    add_freq(ParamId::kNeighborPriority, nf.priority);
    add_freq(ParamId::kNeighborQRxLevMin, nf.q_rxlevmin_dbm);
    add_freq(ParamId::kThreshXHigh, nf.thresh_high_db);
    add_freq(ParamId::kThreshXLow, nf.thresh_low_db);
    add_freq(ParamId::kQOffsetFreq, nf.q_offset_freq_db);
    add_freq(ParamId::kMeasBandwidth, nf.meas_bandwidth_mhz);
    add_freq(ParamId::kNeighborTReselection,
             static_cast<double>(nf.t_reselection));
  }
  for (const auto& ev : cfg.report_configs) emit_event_params(ev, out);
  return out;
}

std::vector<ParamObservation> extract_parameters(const LegacyCellConfig& cfg) {
  std::vector<ParamObservation> out;
  out.reserve(4 + cfg.extra_params.size());
  auto add = [&](std::uint16_t id, double v) {
    out.push_back({ParamKey{cfg.rat, id}, v});
  };
  add(0, cfg.priority);
  add(1, cfg.q_rxlevmin_dbm);
  add(2, cfg.q_hyst_db);
  add(3, static_cast<double>(cfg.t_reselection));
  for (std::size_t i = 0; i < cfg.extra_params.size(); ++i)
    add(static_cast<std::uint16_t>(4 + i), cfg.extra_params[i]);
  return out;
}

}  // namespace mmlab::config
