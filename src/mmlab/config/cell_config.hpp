// Per-cell handoff configuration — the paper's Table 2 in full.
//
// A serving cell broadcasts (SIB1/3/4/5/6/7/8) everything a UE needs for
// idle-mode reselection, and signals per-connection measConfig (RRC
// Connection Reconfiguration) for active-state reporting.  CellConfig is the
// in-memory form of all of it; the RRC codec serializes it message by
// message and MMLab re-extracts it from the decoded messages.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "mmlab/config/events.hpp"
#include "mmlab/spectrum/bands.hpp"
#include "mmlab/util/clock.hpp"

namespace mmlab::config {

/// Serving-cell idle-mode parameters (SIB3; TS 36.331 §6.3.1).
struct ServingIdleConfig {
  int priority = 4;                    ///< Ps, 0..7 (7 most preferred)
  double q_hyst_db = 4.0;              ///< Hs, hysteresis added to serving rank
  double q_rxlevmin_dbm = -122.0;      ///< ∆min (calibration), 2 dB grid
  double s_intrasearch_db = 62.0;      ///< Θintra, intra-freq measurement gate
  double s_nonintrasearch_db = 8.0;    ///< Θnonintra, non-intra measurement gate
  double thresh_serving_low_db = 6.0;  ///< Θ(s)lower, for lower-priority resel.
  Millis t_reselection = 1000;         ///< Treselect, 0..7 s grid
  Millis t_higher_meas = 60'000;       ///< period of higher-priority measurement

  bool operator==(const ServingIdleConfig&) const = default;
};

/// Per-neighbour-frequency parameters (SIB5 intra-LTE inter-freq; SIB6 UMTS;
/// SIB7 GSM; SIB8 CDMA2000), shared shape across the target RATs.
struct NeighborFreqConfig {
  spectrum::Channel channel;          ///< target DL channel
  int priority = 4;                   ///< Pc = P_freq
  double q_rxlevmin_dbm = -122.0;     ///< target-RAT minimum level
  double thresh_high_db = 10.0;       ///< Θ(c)higher (relative to q_rxlevmin)
  double thresh_low_db = 4.0;         ///< Θ(c)lower
  double q_offset_freq_db = 0.0;      ///< ∆freq for equal-priority ranking
  double meas_bandwidth_mhz = 10.0;   ///< allowed measurement bandwidth
  Millis t_reselection = 1000;

  bool operator==(const NeighborFreqConfig&) const = default;
};

/// Full configuration of one LTE cell.
struct CellConfig {
  ServingIdleConfig serving;
  double q_offset_equal_db = 4.0;  ///< ∆equal used in equal-priority ranking
  std::vector<NeighborFreqConfig> neighbor_freqs;  ///< SIB5/6/7/8 entries
  std::vector<std::uint32_t> forbidden_cells;      ///< Listforbid (SIB4)
  std::vector<EventConfig> report_configs;         ///< measConfig events

  bool operator==(const CellConfig&) const = default;

  const NeighborFreqConfig* find_freq(spectrum::Channel ch) const {
    for (const auto& nf : neighbor_freqs)
      if (nf.channel == ch) return &nf;
    return nullptr;
  }
};

/// Configuration of a legacy-RAT (UMTS/GSM/EVDO/CDMA1x) cell.
///
/// The paper only analyzes legacy RATs through the generic parameter lens
/// (Tab 4 counts, Fig 22 diversity); we model them as their standardized
/// parameter vector plus the handful of fields the reselection machinery
/// needs.
struct LegacyCellConfig {
  spectrum::Rat rat = spectrum::Rat::kUmts;
  int priority = 2;
  double q_rxlevmin_dbm = -115.0;
  double q_hyst_db = 4.0;
  Millis t_reselection = 1000;
  /// Remaining standardized parameters, index -> value, sized so that the
  /// total per-RAT count matches Tab 4 (handled by the parameter registry).
  std::vector<double> extra_params;

  bool operator==(const LegacyCellConfig&) const = default;
};

}  // namespace mmlab::config
