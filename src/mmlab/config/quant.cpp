#include "mmlab/config/quant.hpp"

#include <cmath>
#include <stdexcept>
#include <string>

namespace mmlab::config::quant {

namespace {

[[noreturn]] void off_grid(const char* what, double value) {
  throw std::invalid_argument(std::string("quant: off-grid ") + what + ": " +
                              std::to_string(value));
}

/// Check `value = min + step * ie` for integer ie in [0, count).
std::uint64_t linear_encode(double value, double min, double step,
                            std::uint64_t count, const char* what) {
  const double raw = (value - min) / step;
  const double rounded = std::round(raw);
  if (std::abs(raw - rounded) > 1e-9 || rounded < 0.0 ||
      rounded >= static_cast<double>(count))
    off_grid(what, value);
  return static_cast<std::uint64_t>(rounded);
}

std::uint64_t enum_encode(double value, const std::vector<double>& grid,
                          const char* what) {
  for (std::size_t i = 0; i < grid.size(); ++i)
    if (std::abs(grid[i] - value) < 1e-9) return i;
  off_grid(what, value);
}

std::uint64_t enum_encode_ms(Millis value, const std::vector<Millis>& grid,
                             const char* what) {
  for (std::size_t i = 0; i < grid.size(); ++i)
    if (grid[i] == value) return i;
  off_grid(what, static_cast<double>(value));
}

double enum_decode(std::uint64_t ie, const std::vector<double>& grid,
                   const char* what) {
  if (ie >= grid.size()) off_grid(what, static_cast<double>(ie));
  return grid[ie];
}

Millis enum_decode_ms(std::uint64_t ie, const std::vector<Millis>& grid,
                      const char* what) {
  if (ie >= grid.size()) off_grid(what, static_cast<double>(ie));
  return grid[ie];
}

}  // namespace

std::uint64_t encode_q_rxlevmin(double dbm) {
  return linear_encode(dbm, -140.0, 2.0, 49, "q-RxLevMin");  // -140..-44
}
double decode_q_rxlevmin(std::uint64_t ie) {
  return -140.0 + 2.0 * static_cast<double>(ie);
}

std::uint64_t encode_rsrp_threshold(double dbm) {
  return linear_encode(dbm, -140.0, 1.0, 98, "rsrp-threshold");
}
double decode_rsrp_threshold(std::uint64_t ie) {
  return -140.0 + static_cast<double>(ie);
}

std::uint64_t encode_rsrq_threshold(double db) {
  return linear_encode(db, -19.5, 0.5, 35, "rsrq-threshold");
}
double decode_rsrq_threshold(std::uint64_t ie) {
  return -19.5 + 0.5 * static_cast<double>(ie);
}

std::uint64_t encode_hysteresis(double db) {
  return linear_encode(db, 0.0, 0.5, 31, "hysteresis");
}
double decode_hysteresis(std::uint64_t ie) {
  return 0.5 * static_cast<double>(ie);
}

std::uint64_t encode_a3_offset(double db) {
  return linear_encode(db, -15.0, 0.5, 61, "a3-offset");
}
double decode_a3_offset(std::uint64_t ie) {
  return -15.0 + 0.5 * static_cast<double>(ie);
}

std::uint64_t encode_search_threshold(double db) {
  return linear_encode(db, 0.0, 2.0, 32, "search-threshold");
}
double decode_search_threshold(std::uint64_t ie) {
  return 2.0 * static_cast<double>(ie);
}

std::uint64_t encode_t_reselection(Millis ms) {
  if (ms < 0 || ms > 7000 || ms % 1000 != 0)
    throw std::invalid_argument("quant: off-grid t-reselection: " +
                                std::to_string(ms));
  return static_cast<std::uint64_t>(ms / 1000);
}
Millis decode_t_reselection(std::uint64_t ie) {
  if (ie > 7) throw std::invalid_argument("quant: bad t-reselection IE");
  return static_cast<Millis>(ie) * 1000;
}

const std::vector<double>& q_hyst_grid() {
  static const std::vector<double> kGrid = {0, 1, 2, 3, 4, 5, 6, 8,
                                            10, 12, 14, 16, 18, 20, 22, 24};
  return kGrid;
}
std::uint64_t encode_q_hyst(double db) {
  return enum_encode(db, q_hyst_grid(), "q-hyst");
}
double decode_q_hyst(std::uint64_t ie) {
  return enum_decode(ie, q_hyst_grid(), "q-hyst");
}

const std::vector<Millis>& ttt_grid() {
  static const std::vector<Millis> kGrid = {0,   40,  64,  80,   100,  128,
                                            160, 256, 320, 480,  512,  640,
                                            1024, 1280, 2560, 5120};
  return kGrid;
}
std::uint64_t encode_ttt(Millis ms) {
  return enum_encode_ms(ms, ttt_grid(), "time-to-trigger");
}
Millis decode_ttt(std::uint64_t ie) {
  return enum_decode_ms(ie, ttt_grid(), "time-to-trigger");
}

const std::vector<Millis>& report_interval_grid() {
  static const std::vector<Millis> kGrid = {
      120,  240,  480,  640,  1024, 2048, 5120, 10240,
      60'000, 360'000, 720'000, 1'800'000, 3'600'000};
  return kGrid;
}
std::uint64_t encode_report_interval(Millis ms) {
  return enum_encode_ms(ms, report_interval_grid(), "report-interval");
}
Millis decode_report_interval(std::uint64_t ie) {
  return enum_decode_ms(ie, report_interval_grid(), "report-interval");
}

const std::vector<double>& q_offset_grid() {
  static const std::vector<double> kGrid = {
      -24, -22, -20, -18, -16, -14, -12, -10, -8, -6, -5, -4, -3, -2, -1,
      0,   1,   2,   3,   4,   5,   6,   8,   10, 12, 14, 16, 18, 20, 22, 24};
  return kGrid;
}
std::uint64_t encode_q_offset(double db) {
  return enum_encode(db, q_offset_grid(), "q-offset");
}
double decode_q_offset(std::uint64_t ie) {
  return enum_decode(ie, q_offset_grid(), "q-offset");
}

const std::vector<double>& meas_bandwidth_grid() {
  static const std::vector<double> kGrid = {1.4, 3, 5, 10, 15, 20};
  return kGrid;
}
std::uint64_t encode_meas_bandwidth(double mhz) {
  return enum_encode(mhz, meas_bandwidth_grid(), "meas-bandwidth");
}
double decode_meas_bandwidth(std::uint64_t ie) {
  return enum_decode(ie, meas_bandwidth_grid(), "meas-bandwidth");
}

}  // namespace mmlab::config::quant
