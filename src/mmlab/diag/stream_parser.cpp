#include "mmlab/diag/stream_parser.hpp"

#include <stdexcept>

namespace mmlab::diag {

using detail::kEscape;
using detail::kEscEscape;
using detail::kEscTerminator;
using detail::kTerminator;

void StreamParser::feed(const std::uint8_t* data, std::size_t size) {
  if (finished_) throw std::logic_error("StreamParser: feed after finish");
  bytes_fed_ += size;
  for (std::size_t i = 0; i < size; ++i) {
    const std::uint8_t b = data[i];
    switch (state_) {
      case State::kSkipBad:
        // Resyncing after a bad escape: the whole frame is lost; count it
        // once when its terminator finally shows up (possibly chunks later).
        if (b == kTerminator) {
          ++stats_.malformed;
          state_ = State::kBody;
        }
        break;
      case State::kEscape:
        // Note a terminator here is *consumed* as the (invalid) escape code,
        // exactly as batch Parser does — the skip then runs to the next one.
        if (b == kEscTerminator) {
          body_.push_back(kTerminator);
          state_ = State::kBody;
        } else if (b == kEscEscape) {
          body_.push_back(kEscape);
          state_ = State::kBody;
        } else {
          body_.clear();
          state_ = State::kSkipBad;
        }
        break;
      case State::kBody:
        if (b == kTerminator) {
          if (!body_.empty()) {  // empty = stray terminator between frames
            Record rec;
            if (detail::finalize_frame(body_.data(), body_.size(), rec,
                                       stats_))
              ready_.push_back(std::move(rec));
            body_.clear();
          }
        } else if (b == kEscape) {
          state_ = State::kEscape;
        } else {
          body_.push_back(b);
        }
        break;
    }
  }
}

bool StreamParser::next(Record& out) {
  if (ready_.empty()) return false;
  out = std::move(ready_.front());
  ready_.pop_front();
  return true;
}

void StreamParser::reset() {
  state_ = State::kBody;
  body_.clear();
  ready_.clear();
  stats_ = ParseStats{};
  bytes_fed_ = 0;
  finished_ = false;
}

void StreamParser::finish() {
  if (finished_) return;
  finished_ = true;
  // Parser's trailing-truncation contract: an unterminated tail counts as
  // exactly one malformed frame — whether it is plain bytes, a dangling
  // escape, or an unfinished bad-escape resync — and an empty tail counts
  // nothing.
  if (state_ != State::kBody || !body_.empty()) ++stats_.malformed;
  body_.clear();
  state_ = State::kBody;
}

}  // namespace mmlab::diag
