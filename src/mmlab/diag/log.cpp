#include "mmlab/diag/log.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "mmlab/util/crc.hpp"

namespace mmlab::diag {

namespace {

using detail::kEscape;
using detail::kEscEscape;
using detail::kEscTerminator;
using detail::kTerminator;

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xFF));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_i64(std::vector<std::uint8_t>& out, std::int64_t v) {
  auto u = static_cast<std::uint64_t>(v);
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(u & 0xFF));
    u >>= 8;
  }
}

std::uint16_t get_u16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

std::int64_t get_i64(const std::uint8_t* p) {
  std::uint64_t u = 0;
  for (int i = 7; i >= 0; --i) u = (u << 8) | p[i];
  return static_cast<std::int64_t>(u);
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(v & 0xFF));
    v >>= 8;
  }
}

std::uint32_t get_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

}  // namespace

void Writer::append(const Record& record) {
  if (record.payload.size() > 0xFFFF)
    throw std::invalid_argument("diag: payload too large");
  std::vector<std::uint8_t> body;
  body.reserve(14 + record.payload.size());  // header + payload + CRC
  put_u16(body, static_cast<std::uint16_t>(record.code));
  put_i64(body, record.timestamp.ms);
  put_u16(body, static_cast<std::uint16_t>(record.payload.size()));
  body.insert(body.end(), record.payload.begin(), record.payload.end());
  const std::uint16_t crc = crc16_ccitt(body.data(), body.size());
  put_u16(body, crc);
  // Worst case every body byte needs escaping, plus the terminator: one
  // up-front reservation instead of O(frame) push_back growth.  Grow by at
  // least 2x so repeated appends keep amortized O(1) (a bare reserve(need)
  // would reallocate on every append).
  const std::size_t need = buffer_.size() + 2 * body.size() + 1;
  if (need > buffer_.capacity())
    buffer_.reserve(std::max(need, buffer_.capacity() * 2));
  for (std::uint8_t b : body) {
    if (b == kTerminator) {
      buffer_.push_back(kEscape);
      buffer_.push_back(kEscTerminator);
    } else if (b == kEscape) {
      buffer_.push_back(kEscape);
      buffer_.push_back(kEscEscape);
    } else {
      buffer_.push_back(b);
    }
  }
  buffer_.push_back(kTerminator);
  ++count_;
}

bool Parser::next(Record& out) {
  while (pos_ < size_) {
    // Fast path: locate the frame terminator with memchr; when the segment
    // holds no escape byte (the overwhelmingly common case — only 2 of 256
    // byte values need escaping) validate it in place, copy-free.
    const std::uint8_t* base = data_ + pos_;
    const auto* term = static_cast<const std::uint8_t*>(
        std::memchr(base, kTerminator, size_ - pos_));
    if (!term) {
      // Truncated trailing frame (log cut mid-write): the tail is non-empty
      // (loop guard) and unterminated, which always counts one malformed.
      pos_ = size_;
      ++stats_.malformed;
      return false;
    }
    const std::size_t seg = static_cast<std::size_t>(term - base);
    if (std::memchr(base, kEscape, seg) == nullptr) {
      pos_ += seg + 1;  // past the terminator
      if (seg == 0) continue;  // stray terminator between frames
      if (detail::finalize_frame(base, seg, out, stats_)) return true;
      continue;
    }

    // Escaped segment: collect and unescape bytes up to the next terminator.
    // (Not bounded by `term`: a 0x7D directly before it consumes the
    // terminator as its escape code and resyncs at the following one.)
    std::vector<std::uint8_t> body;
    bool saw_terminator = false;
    bool bad_escape = false;
    while (pos_ < size_) {
      const std::uint8_t b = data_[pos_++];
      if (b == kTerminator) {
        saw_terminator = true;
        break;
      }
      if (b == kEscape) {
        if (pos_ >= size_) {
          bad_escape = true;
          break;
        }
        const std::uint8_t e = data_[pos_++];
        if (e == kEscTerminator)
          body.push_back(kTerminator);
        else if (e == kEscEscape)
          body.push_back(kEscape);
        else {
          bad_escape = true;
          // Skip ahead to the terminator to resync.
          while (pos_ < size_ && data_[pos_] != kTerminator) ++pos_;
          if (pos_ < size_) {
            ++pos_;
            saw_terminator = true;
          }
          break;
        }
      } else {
        body.push_back(b);
      }
    }
    if (!saw_terminator) {
      // Truncated trailing frame (log cut mid-write): count iff non-empty.
      if (!body.empty() || bad_escape) ++stats_.malformed;
      return false;
    }
    if (bad_escape) {
      ++stats_.malformed;
      continue;
    }
    if (body.empty()) continue;  // stray terminator between frames
    if (detail::finalize_frame(body.data(), body.size(), out, stats_))
      return true;
  }
  return false;
}

bool detail::finalize_frame(const std::uint8_t* body, std::size_t size,
                            Record& out, ParseStats& stats) {
  if (size < 14) {  // 12-byte header + 2-byte CRC
    ++stats.malformed;
    return false;
  }
  const std::size_t crc_pos = size - 2;
  const std::uint16_t want = get_u16(body + crc_pos);
  const std::uint16_t got = crc16_ccitt(body, crc_pos);
  if (want != got) {
    ++stats.crc_failures;
    return false;
  }
  const std::uint16_t len = get_u16(body + 10);
  if (static_cast<std::size_t>(len) + 14 != size) {
    ++stats.malformed;
    return false;
  }
  out.code = static_cast<LogCode>(get_u16(body));
  out.timestamp = SimTime{get_i64(body + 2)};
  out.payload.assign(body + 12, body + 12 + len);
  ++stats.records;
  return true;
}

std::vector<Record> Parser::all() {
  std::vector<Record> out;
  Record rec;
  while (next(rec)) out.push_back(rec);
  return out;
}

std::vector<std::uint8_t> encode_camp_event(const CampEvent& ev) {
  std::vector<std::uint8_t> out;
  out.reserve(20);
  put_u32(out, ev.cell_identity);
  put_u16(out, ev.pci);
  out.push_back(ev.rat);
  put_u32(out, ev.channel);
  out.push_back(ev.cause);
  put_u32(out, static_cast<std::uint32_t>(ev.x_dm));
  put_u32(out, static_cast<std::uint32_t>(ev.y_dm));
  return out;
}

bool decode_camp_event(const std::vector<std::uint8_t>& payload,
                       CampEvent& out) {
  if (payload.size() != 20) return false;
  out.cell_identity = get_u32(payload.data());
  out.pci = get_u16(payload.data() + 4);
  out.rat = payload[6];
  out.channel = get_u32(payload.data() + 7);
  out.cause = payload[11];
  out.x_dm = static_cast<std::int32_t>(get_u32(payload.data() + 12));
  out.y_dm = static_cast<std::int32_t>(get_u32(payload.data() + 16));
  return true;
}

std::vector<std::uint8_t> encode_radio_snapshot(const RadioSnapshot& snap) {
  std::vector<std::uint8_t> out;
  out.reserve(6);
  put_u16(out, static_cast<std::uint16_t>(snap.rsrp_cdbm));
  put_u16(out, static_cast<std::uint16_t>(snap.rsrq_cdb));
  put_u16(out, static_cast<std::uint16_t>(snap.sinr_cdb));
  return out;
}

bool decode_radio_snapshot(const std::vector<std::uint8_t>& payload,
                           RadioSnapshot& out) {
  if (payload.size() != 6) return false;
  out.rsrp_cdbm = static_cast<std::int16_t>(get_u16(payload.data()));
  out.rsrq_cdb = static_cast<std::int16_t>(get_u16(payload.data() + 2));
  out.sinr_cdb = static_cast<std::int16_t>(get_u16(payload.data() + 4));
  return true;
}

}  // namespace mmlab::diag
