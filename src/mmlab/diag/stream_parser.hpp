// Incremental diag-stream parser — the framing layer of the ingest service.
//
// Parser (log.hpp) needs the whole log in memory; devices upload byte chunks
// cut at arbitrary offsets.  StreamParser accepts those chunks one feed() at
// a time and carries all framing state across the boundaries: a partial
// frame is buffered (not counted — more bytes may still arrive), an escape
// sequence split across two chunks is reassembled, and a bad-escape resync
// in progress keeps discarding into the next chunk until the terminator.
//
// Equivalence guarantee: for any chunking of a byte stream,
//     feed(chunk_0) ... feed(chunk_n); finish()
// yields record-for-record and stat-for-stat exactly what
//     Parser(concatenation).all()
// yields.  finish() marks the true end of the stream and applies Parser's
// trailing-truncation contract: a non-empty unterminated tail (or a dangling
// escape) counts as exactly one `malformed`; an empty tail counts nothing.
// Before finish(), an incomplete tail is merely "waiting for bytes".
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "mmlab/diag/log.hpp"

namespace mmlab::diag {

class StreamParser {
 public:
  /// Consume one chunk; any frames it completes become ready for next().
  /// Throws std::logic_error if called after finish().
  void feed(const std::uint8_t* data, std::size_t size);
  void feed(const std::vector<std::uint8_t>& chunk) {
    feed(chunk.data(), chunk.size());
  }

  /// Pop the oldest completed record. False when none is ready (which after
  /// finish() means the stream is exhausted).
  bool next(Record& out);

  /// End of stream: applies the trailing-truncation rule (see header
  /// comment).  Idempotent; feed() afterwards throws.
  void finish();
  bool finished() const { return finished_; }

  /// Reset-on-abort contract: return to the freshly-constructed state.  The
  /// upload died (device disconnected mid-frame), it did not *end* — so the
  /// partial tail is discarded without the finish() malformed count, buffered
  /// ready records are dropped, stats and bytes_fed zero, and the parser is
  /// immediately reusable for a new stream (even after finish()).
  void reset();

  /// Identical to what batch Parser::stats() would report over the bytes fed
  /// so far (plus finish()'s tail accounting once called).
  const ParseStats& stats() const { return stats_; }

  std::size_t bytes_fed() const { return bytes_fed_; }
  /// Completed records not yet retrieved via next().
  std::size_t ready() const { return ready_.size(); }

 private:
  enum class State {
    kBody,     ///< accumulating unescaped frame bytes
    kEscape,   ///< saw 0x7D, waiting for the escape code byte
    kSkipBad,  ///< bad escape seen; discarding until the next terminator
  };

  State state_ = State::kBody;
  std::vector<std::uint8_t> body_;  ///< partial unescaped frame
  std::deque<Record> ready_;
  ParseStats stats_;
  std::size_t bytes_fed_ = 0;
  bool finished_ = false;
};

}  // namespace mmlab::diag
