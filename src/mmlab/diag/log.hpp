// Device diagnostic log — the stand-in for the Qualcomm diag interface that
// MobileInsight (and our MMLab) reads on real phones.
//
// A diag stream is a sequence of framed records.  Record body layout
// (little-endian):
//     u16 log_code | i64 timestamp_ms | u16 payload_len | payload bytes
// Framing (HDLC-like, as the real diag protocol):
//     escaped(body || crc16_ccitt(body)) || 0x7E
// with 0x7E escaped as 0x7D 0x5E and 0x7D as 0x7D 0x5D inside the frame.
//
// The parser must survive what real diag streams contain: truncated final
// frames, corrupted bytes, and unknown log codes.  It resynchronizes at the
// next 0x7E terminator and counts (rather than throws on) bad frames.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "mmlab/util/clock.hpp"

namespace mmlab::diag {

/// Log codes. Values mirror the spirit of real Qualcomm codes
/// (e.g. 0xB0C0 = LTE RRC OTA packet).
enum class LogCode : std::uint16_t {
  kLteRrcOta = 0xB0C0,       ///< payload: rrc::encode() bytes
  kServingCellInfo = 0xB0C1, ///< payload: CampEvent (camping / cell change)
  kRadioMeasurement = 0xB180,///< payload: RadioSnapshot (periodic)
  kLegacyRrcOta = 0x412F,    ///< payload: rrc::encode() of LegacySystemInfo
};

struct Record {
  LogCode code = LogCode::kLteRrcOta;
  SimTime timestamp;
  std::vector<std::uint8_t> payload;

  bool operator==(const Record&) const = default;
};

/// Serializes records into a framed byte stream.
class Writer {
 public:
  void append(const Record& record);
  const std::vector<std::uint8_t>& bytes() const { return buffer_; }
  std::vector<std::uint8_t> take() && { return std::move(buffer_); }
  std::size_t record_count() const { return count_; }

 private:
  std::vector<std::uint8_t> buffer_;
  std::size_t count_ = 0;
};

/// Parse statistics; bad frames are skipped, not fatal.
struct ParseStats {
  std::size_t records = 0;
  std::size_t crc_failures = 0;
  std::size_t malformed = 0;  ///< too short / length mismatch
};

/// Parses a framed byte stream back into records.
///
/// Trailing-truncation contract (streaming consumers rely on this): a log
/// cut mid-frame — any unterminated non-empty tail, including one ending in
/// a dangling escape byte — counts as **exactly one** `malformed` frame, at
/// the moment the end of the buffer is first reached.  A tail of zero bytes
/// (the stream ends exactly on a frame boundary) counts nothing.  Once
/// exhausted, further next() calls return false without recounting, so the
/// tail can never loop or double-count.  This is the distinction
/// StreamParser uses to tell "incomplete, wait for more bytes" (no
/// terminator *yet*) from "corrupt" (no terminator *ever*, i.e. at
/// end-of-stream).
class Parser {
 public:
  Parser(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}
  explicit Parser(const std::vector<std::uint8_t>& buf)
      : Parser(buf.data(), buf.size()) {}

  /// Next record, or false at end of stream. Corrupt frames are skipped and
  /// counted in stats().
  bool next(Record& out);

  /// Convenience: parse everything.
  std::vector<Record> all();

  const ParseStats& stats() const { return stats_; }

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  ParseStats stats_;
};

// Fixed payloads ------------------------------------------------------------

/// Emitted whenever the UE camps on / is served by a new cell; lets the
/// analyzer segment the log per cell and detect idle-state reselections.
struct CampEvent {
  std::uint32_t cell_identity = 0;
  std::uint16_t pci = 0;
  std::uint8_t rat = 0;       ///< spectrum::Rat
  std::uint32_t channel = 0;  ///< EARFCN / UARFCN / ARFCN
  std::uint8_t cause = 0;     ///< CampCause
  /// Device GPS fix at camp time (decimeters in the world plane); the
  /// location analyses (Figs 20-21) join on this, as the real MMLab app
  /// joins on the phone's GPS.
  std::int32_t x_dm = 0;
  std::int32_t y_dm = 0;

  bool operator==(const CampEvent&) const = default;
};

enum class CampCause : std::uint8_t {
  kInitial = 0,        ///< power-on / first camp
  kIdleReselection = 1,
  kActiveHandoff = 2,
  kForcedSwitch = 3,   ///< MMLab Type-I proactive cell switching
};

/// Periodic (100 ms) radio snapshot of the serving cell, fixed point:
/// RSRP/RSRQ/SINR in centi-dB(m).
struct RadioSnapshot {
  std::int16_t rsrp_cdbm = -14000;
  std::int16_t rsrq_cdb = -1950;
  std::int16_t sinr_cdb = 0;

  bool operator==(const RadioSnapshot&) const = default;
};

std::vector<std::uint8_t> encode_camp_event(const CampEvent& ev);
bool decode_camp_event(const std::vector<std::uint8_t>& payload, CampEvent& out);

std::vector<std::uint8_t> encode_radio_snapshot(const RadioSnapshot& snap);
bool decode_radio_snapshot(const std::vector<std::uint8_t>& payload,
                           RadioSnapshot& out);

// Framing internals shared by Parser and StreamParser -----------------------

namespace detail {

inline constexpr std::uint8_t kTerminator = 0x7E;
inline constexpr std::uint8_t kEscape = 0x7D;
inline constexpr std::uint8_t kEscTerminator = 0x5E;  // 0x7E ^ 0x20
inline constexpr std::uint8_t kEscEscape = 0x5D;      // 0x7D ^ 0x20

/// Validate one complete unescaped frame body (header + payload + CRC) and
/// either fill `out` (and bump `stats.records`) or bump the matching error
/// counter.  Returns true iff `out` now holds a record.  Both parsers funnel
/// every terminated frame through here so their accounting cannot diverge.
bool finalize_frame(const std::uint8_t* body, std::size_t size, Record& out,
                    ParseStats& stats);

}  // namespace detail

}  // namespace mmlab::diag
