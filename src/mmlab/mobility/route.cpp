#include "mmlab/mobility/route.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace mmlab::mobility {

Route Route::from_waypoints(std::vector<Waypoint> waypoints) {
  if (waypoints.size() < 2)
    throw std::invalid_argument("Route: need at least two waypoints");
  Route r;
  r.waypoints_ = std::move(waypoints);
  r.times_.resize(r.waypoints_.size());
  r.times_[0] = 0;
  for (std::size_t i = 1; i < r.waypoints_.size(); ++i) {
    const double seg =
        geo::distance(r.waypoints_[i - 1].position, r.waypoints_[i].position);
    const double speed = std::max(r.waypoints_[i - 1].speed_mps, 0.1);
    r.length_m_ += seg;
    r.times_[i] =
        r.times_[i - 1] + static_cast<Millis>(std::llround(seg / speed * 1e3));
  }
  return r;
}

geo::Point Route::position_at(Millis t) const {
  if (t <= 0) return waypoints_.front().position;
  if (t >= times_.back()) return waypoints_.back().position;
  const auto it = std::upper_bound(times_.begin(), times_.end(), t);
  const auto i = static_cast<std::size_t>(it - times_.begin());
  const Millis t0 = times_[i - 1], t1 = times_[i];
  const double frac = t1 == t0 ? 0.0
                               : static_cast<double>(t - t0) /
                                     static_cast<double>(t1 - t0);
  return geo::lerp(waypoints_[i - 1].position, waypoints_[i].position, frac);
}

Route manhattan_drive(Rng& rng, const geo::City& city, double speed_mps,
                      Millis duration, double block_m) {
  // Start at a random intersection in the central half of the city.
  const double extent = city.extent_m;
  auto snap = [&](double v) { return std::round(v / block_m) * block_m; };
  geo::Point pos{city.origin.x + snap(rng.uniform(0.25, 0.75) * extent),
                 city.origin.y + snap(rng.uniform(0.25, 0.75) * extent)};
  std::vector<Waypoint> wps{{pos, speed_mps}};
  Millis elapsed = 0;
  int heading = static_cast<int>(rng.below(4));  // 0=E 1=N 2=W 3=S
  while (elapsed < duration) {
    const int blocks = static_cast<int>(rng.between(2, 6));
    const double leg = blocks * block_m;
    geo::Point next = pos;
    switch (heading) {
      case 0: next.x += leg; break;
      case 1: next.y += leg; break;
      case 2: next.x -= leg; break;
      default: next.y -= leg; break;
    }
    // Bounce off the city boundary by reversing the heading.
    if (next.x < city.origin.x || next.x > city.origin.x + extent ||
        next.y < city.origin.y || next.y > city.origin.y + extent) {
      heading = (heading + 2) % 4;
      continue;
    }
    pos = next;
    wps.push_back({pos, speed_mps});
    elapsed += static_cast<Millis>(std::llround(leg / speed_mps * 1e3));
    // Turn or continue: 60 % turn at each intersection block run.
    if (rng.chance(0.6))
      heading = (heading + (rng.chance(0.5) ? 1 : 3)) % 4;
  }
  return Route::from_waypoints(std::move(wps));
}

Route highway_drive(geo::Point a, geo::Point b, double speed_mps) {
  return Route::from_waypoints({{a, speed_mps}, {b, speed_mps}});
}

}  // namespace mmlab::mobility
