// UE movement: piecewise-linear routes with per-segment speeds, plus
// generators for the paper's two drive profiles — city grid driving
// (<50 km/h) and highway driving (90-120 km/h).
#pragma once

#include <vector>

#include "mmlab/geo/region.hpp"
#include "mmlab/util/clock.hpp"
#include "mmlab/util/rng.hpp"

namespace mmlab::mobility {

struct Waypoint {
  geo::Point position;
  double speed_mps = 13.9;  ///< speed while travelling *to the next* waypoint
};

/// A drive: piecewise-linear path traversed at per-segment speeds.
class Route {
 public:
  static Route from_waypoints(std::vector<Waypoint> waypoints);

  /// Position at time t since route start; clamped to the endpoints.
  geo::Point position_at(Millis t) const;

  Millis duration() const { return times_.empty() ? 0 : times_.back(); }
  double length_m() const { return length_m_; }
  const std::vector<Waypoint>& waypoints() const { return waypoints_; }

 private:
  std::vector<Waypoint> waypoints_;
  std::vector<Millis> times_;  ///< arrival time at each waypoint
  double length_m_ = 0.0;
};

/// Random Manhattan-grid drive inside a city: axis-aligned legs of
/// `block_m`-multiples, turning at intersections, bounded to the city square.
Route manhattan_drive(Rng& rng, const geo::City& city, double speed_mps,
                      Millis duration, double block_m = 500.0);

/// Straight highway drive from a to b at the given speed.
Route highway_drive(geo::Point a, geo::Point b, double speed_mps);

/// kph -> m/s.
constexpr double kph(double v) { return v / 3.6; }

}  // namespace mmlab::mobility
