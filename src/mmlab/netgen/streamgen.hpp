// Streaming world generation for out-of-core datasets.
//
// generate_world() materialises the whole Deployment — fine at the paper's
// ~32k cells, hopeless at countrywide scale (≥300k cells, 100M+ parameter
// rows).  stream_world() walks the exact same per-carrier RNG sequence but
// holds only ONE cell at a time: for each cell it draws the configuration
// and update schedule, simulates the drive-by visits across the collection
// window (applying scheduled reconfigurations between visits, Fig 13), and
// emits each visit as a snapshot to a SnapshotSink.  Peak memory is O(one
// cell), independent of scale.
//
// Determinism contract (pinned by StreamGen.MatchesGenerateWorld): for equal
// (seed, scale, window_days), the cell identities, channels, positions and
// configurations emitted here are identical to generate_world()'s — both
// consume the same carrier_rng draws in the same order.  Visit times come
// from an independent per-cell stream so adding visits never perturbs the
// world itself.
//
// netgen cannot depend on core or store (DESIGN.md §2), so the sink speaks
// only net/config/geo/util vocabulary; adapters to ConfigDatabase or the
// MMDS v2 StreamingDatasetSink live with the callers (tools/store_soak,
// mmlab_cli).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mmlab/config/params.hpp"
#include "mmlab/geo/geometry.hpp"
#include "mmlab/net/deployment.hpp"
#include "mmlab/util/clock.hpp"

namespace mmlab::netgen {

/// Receives one decoded configuration snapshot per cell visit.  Mirrors
/// ConfigDatabase::add_snapshot so an adapter is a one-line forward.
class SnapshotSink {
 public:
  virtual ~SnapshotSink() = default;
  virtual void snapshot(const std::string& carrier, net::CellId cell_id,
                        spectrum::Rat rat, std::uint32_t channel,
                        geo::Point position, SimTime t,
                        const std::vector<config::ParamObservation>& params) = 0;
};

/// Cell-count multiplier for the countrywide tier: ~10x the paper's 32k
/// cells (≥300k cells, 100M+ parameter rows at the default visit count).
constexpr double kCountrywideScale = 10.0;

struct StreamWorldOptions {
  std::uint64_t seed = 42;
  /// Cell-count multiplier; kCountrywideScale for the soak tier.
  double scale = 1.0;
  /// D2 collection window (reconfigurations land inside it).
  double window_days = 540.0;
  /// Snapshots per cell, spread uniformly over the window.  The paper's D2
  /// revisits cells a handful of times; 3 exercises the reconfiguration
  /// paths without inflating the row count.
  int visits_per_cell = 3;
};

struct StreamStats {
  std::uint64_t cells = 0;
  std::uint64_t snapshots = 0;
  std::uint64_t rows = 0;             ///< parameter observations emitted
  std::uint64_t updates_applied = 0;  ///< reconfigurations hit by a visit
};

/// Generate the world cell by cell, emitting every visit to `sink`.
/// Snapshots arrive grouped by carrier, cells in ascending id order, each
/// cell's visits in ascending time — exactly the order StreamingDatasetSink
/// spills best, and the order that makes chunked writes bit-identical to a
/// single in-memory database (see store/shard_writer.hpp).
StreamStats stream_world(const StreamWorldOptions& options, SnapshotSink& sink);

}  // namespace mmlab::netgen
