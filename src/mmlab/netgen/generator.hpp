// World generation: turn the carrier catalogue into a concrete Deployment —
// cell sites in cities, channels, per-cell configurations drawn from the
// profiles — plus each cell's temporal reconfiguration schedule (Fig 13).
#pragma once

#include <vector>

#include "mmlab/net/deployment.hpp"
#include "mmlab/netgen/profile.hpp"

namespace mmlab::netgen {

struct WorldOptions {
  std::uint64_t seed = 42;
  /// Cell-count multiplier. 1.0 = the paper's ~32k cells; tests use ~0.02.
  double scale = 1.0;
  /// Length of the D2 collection window in days (reconfigurations happen
  /// inside it).
  double window_days = 540.0;
};

/// One scheduled reconfiguration of a cell.
struct ConfigUpdate {
  double day = 0.0;
  bool active_params = false;  ///< true: reporting events; false: SIB params
};

struct GeneratedWorld {
  net::Deployment network;
  /// Per cell (index-aligned with network.cells()): pending update schedule,
  /// sorted by day.
  std::vector<std::vector<ConfigUpdate>> update_schedule;
  /// Index-aligned with network.carriers().
  std::vector<const CarrierProfile*> profiles;
  WorldOptions options;
};

GeneratedWorld generate_world(const WorldOptions& options);

/// Draw one LTE cell configuration from a profile (exposed for tests and
/// the drive-test benches that need a cell with specific knobs).
config::CellConfig make_lte_config(const CarrierProfile& profile,
                                   std::uint64_t world_seed,
                                   net::CellId cell_id,
                                   spectrum::Channel channel,
                                   geo::CityId city, geo::Point position,
                                   const std::vector<FreqPolicy>& city_freqs);

/// Apply one scheduled reconfiguration to cell `cell_index` of the world.
/// Deterministic in (world seed, cell, update day).
///
/// Writes ONLY the target cell — no other cell, carrier, schedule or world
/// state is touched.  The parallel crawl engine (sim::run_crawl) relies on
/// this to apply each carrier's updates from that carrier's shard without
/// synchronisation; internally the draw is routed through a helper that
/// takes just the one `net::Cell&` so the compiler enforces the contract
/// (pinned by ApplyConfigUpdate.WritesOnlyTargetCell).
void apply_config_update(GeneratedWorld& world, std::size_t cell_index,
                         const ConfigUpdate& update);

}  // namespace mmlab::netgen
