#include "mmlab/netgen/generator.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "mmlab/netgen/streamgen.hpp"

namespace mmlab::netgen {

namespace {

/// Chain-hash arbitrary keys into one 64-bit seed.
std::uint64_t hash_keys(std::initializer_list<std::uint64_t> keys) {
  std::uint64_t state = 0x9e3779b97f4a7c15ULL;
  for (auto k : keys) {
    state ^= k + 0x9e3779b97f4a7c15ULL + (state << 6) + (state >> 2);
    state = splitmix64(state);
  }
  return state;
}

/// Configuration draws use one independent stream per parameter, derived
/// from a base key.  This keeps a tract's cells identical for spatially
/// coherent carriers (T-Mobile, Fig 21) even though different cells take
/// different branches (channel policies, event types) — a shared sequential
/// stream would skew after the first branch.
struct DrawCtx {
  std::uint64_t base;

  Rng stream(std::uint64_t tag) const { return Rng(hash_keys({base, tag})); }

  template <typename T>
  T draw(const stats::Discrete<T>& dist, std::uint64_t tag) const {
    Rng rng = stream(tag);
    return dist.sample(rng);
  }

  bool chance(double p, std::uint64_t tag) const {
    Rng rng = stream(tag);
    return rng.chance(p);
  }
};

DrawCtx config_ctx(const CarrierProfile& profile, std::uint64_t world_seed,
                   net::CellId cell_id, geo::Point pos) {
  if (profile.tract_m > 0.0) {
    const auto tx = static_cast<std::uint64_t>(
        static_cast<std::int64_t>(std::floor(pos.x / profile.tract_m)));
    const auto ty = static_cast<std::uint64_t>(
        static_cast<std::int64_t>(std::floor(pos.y / profile.tract_m)));
    return DrawCtx{
        hash_keys({world_seed, profile.seed_salt, 0x7124c7ULL, tx, ty})};
  }
  return DrawCtx{hash_keys({world_seed, profile.seed_salt, 0xce11ULL, cell_id})};
}

/// Default legacy channels (UARFCN / ARFCN / CDMA channel numbers).
std::uint32_t legacy_channel(spectrum::Rat rat) {
  switch (rat) {
    case spectrum::Rat::kUmts: return 4435;   // the paper's Fig 3 example
    case spectrum::Rat::kGsm: return 190;
    case spectrum::Rat::kEvdo: return 283;
    case spectrum::Rat::kCdma1x: return 425;
    default: return 0;
  }
}

int legacy_priority(spectrum::Rat rat) {
  switch (rat) {
    case spectrum::Rat::kUmts: return 2;
    case spectrum::Rat::kEvdo: return 2;
    case spectrum::Rat::kGsm: return 1;
    case spectrum::Rat::kCdma1x: return 1;
    default: return 0;
  }
}

int legacy_extra_param_count(spectrum::Rat rat) {
  // Tab 4 totals minus the 4 semantic parameters the registry names.
  switch (rat) {
    case spectrum::Rat::kUmts: return 60;
    case spectrum::Rat::kGsm: return 5;
    case spectrum::Rat::kEvdo: return 10;
    case spectrum::Rat::kCdma1x: return 0;
    default: return 0;
  }
}

config::EventConfig make_event(const CarrierProfile& profile,
                               const EventPolicy& policy, const DrawCtx& ctx,
                               std::uint64_t tag_base) {
  config::EventConfig ev;
  ev.type = policy.type;
  ev.metric = policy.metric;
  if (!policy.threshold1.empty())
    ev.threshold1 = ctx.draw(policy.threshold1, tag_base + 1);
  if (!policy.threshold2.empty())
    ev.threshold2 = ctx.draw(policy.threshold2, tag_base + 2);
  if (!policy.offset.empty()) ev.offset_db = ctx.draw(policy.offset, tag_base + 3);
  if (!policy.hysteresis.empty())
    ev.hysteresis_db = ctx.draw(policy.hysteresis, tag_base + 4);
  if (policy.type == config::EventType::kPeriodic) {
    ev.time_to_trigger = 0;
    ev.report_interval = policy.report_interval.empty()
                             ? ctx.draw(profile.periodic_interval, tag_base + 5)
                             : ctx.draw(policy.report_interval, tag_base + 5);
    ev.report_amount = 16;
  } else {
    ev.time_to_trigger = ctx.draw(profile.ttt, tag_base + 6);
    Rng amount_rng = ctx.stream(tag_base + 7);
    const double amount_roll = amount_rng.uniform();
    ev.report_amount = amount_roll < 0.5 ? 1 : (amount_roll < 0.8 ? 2 : 4);
    if (ev.report_amount > 1) ev.report_interval = 480;
  }
  return ev;
}

std::vector<config::EventConfig> draw_report_configs(
    const CarrierProfile& profile, const DrawCtx& ctx) {
  std::vector<config::EventConfig> out;
  // A2 measurement gate ("serving became worse than threshold").
  if (ctx.chance(profile.a2_gate_prob, 300)) {
    config::EventConfig a2;
    a2.type = config::EventType::kA2;
    a2.metric = config::SignalMetric::kRsrp;
    a2.threshold1 = ctx.draw(profile.a2_threshold, 301);
    a2.hysteresis_db = ctx.draw(profile.a2_hysteresis, 302);
    a2.time_to_trigger = ctx.draw(profile.ttt, 303);
    a2.report_amount = 2;
    a2.report_interval = 480;
    out.push_back(a2);
  }
  // Exactly one decisive policy per cell.
  if (!profile.decisive.empty()) {
    std::vector<double> weights;
    weights.reserve(profile.decisive.size());
    for (const auto& d : profile.decisive) weights.push_back(d.weight);
    Rng pick_rng = ctx.stream(310);
    const std::size_t pick = pick_rng.weighted(weights);
    const auto& policy = profile.decisive[pick];
    // Different event families draw from different tag blocks so a decisive
    // swap (temporal update) re-randomizes cleanly.
    out.push_back(make_event(profile, policy, ctx, 320 + 16 * pick));
    // Optionally stack a periodic reporter on top of an event policy.
    if (policy.type != config::EventType::kPeriodic &&
        ctx.chance(profile.extra_periodic_prob, 311)) {
      EventPolicy p;
      p.type = config::EventType::kPeriodic;
      out.push_back(make_event(profile, p, ctx, 480));
    }
  }
  return out;
}

}  // namespace

config::CellConfig make_lte_config(const CarrierProfile& profile,
                                   std::uint64_t world_seed,
                                   net::CellId cell_id,
                                   spectrum::Channel channel,
                                   geo::CityId city, geo::Point position,
                                   const std::vector<FreqPolicy>& city_freqs) {
  (void)city;
  const DrawCtx ctx = config_ctx(profile, world_seed, cell_id, position);
  config::CellConfig cfg;

  // Serving priority comes from the channel's frequency policy (Fig 18).
  // The tag folds in the channel so same-tract cells on different channels
  // still follow their own channel's policy.
  const FreqPolicy* serving_policy = nullptr;
  for (const auto& f : profile.lte_freqs)
    if (f.earfcn == channel.number) serving_policy = &f;
  cfg.serving.priority =
      serving_policy ? ctx.draw(serving_policy->priority, 1'000 + channel.number)
                     : 4;
  cfg.serving.q_hyst_db = ctx.draw(profile.q_hyst, 2);
  cfg.serving.q_rxlevmin_dbm = ctx.draw(profile.dmin, 3);
  cfg.serving.s_intrasearch_db = ctx.draw(profile.s_intra, 4);
  cfg.serving.s_nonintrasearch_db = ctx.draw(profile.s_nonintra, 5);
  // Standard-practice invariant (paper §4.2): Θnonintra <= Θintra, clamped
  // to equality when the draws invert (the ~5 % "equal gates" cases)...
  if (cfg.serving.s_nonintrasearch_db > cfg.serving.s_intrasearch_db)
    cfg.serving.s_nonintrasearch_db = cfg.serving.s_intrasearch_db;
  // ...except for the rare counterexample carriers, which really swap.
  if (profile.swapped_search_prob > 0.0 &&
      ctx.chance(profile.swapped_search_prob, 6) &&
      cfg.serving.s_intrasearch_db > cfg.serving.s_nonintrasearch_db)
    std::swap(cfg.serving.s_intrasearch_db, cfg.serving.s_nonintrasearch_db);
  cfg.serving.thresh_serving_low_db = ctx.draw(profile.thresh_serving_low, 7);
  cfg.serving.t_reselection = ctx.draw(profile.t_resel, 8);
  cfg.serving.t_higher_meas = 60'000;
  cfg.q_offset_equal_db = ctx.draw(profile.q_offset_equal, 9);

  // Inter-frequency neighbours: the strongest other channels in this city.
  std::vector<const FreqPolicy*> others;
  for (const auto& f : city_freqs)
    if (f.earfcn != channel.number) others.push_back(&f);
  std::sort(others.begin(), others.end(),
            [](const FreqPolicy* a, const FreqPolicy* b) {
              return a->weight > b->weight;
            });
  if (others.size() > 3) others.resize(3);
  for (const auto* f : others) {
    const std::uint64_t tag = 10'000 + 16ULL * f->earfcn;
    config::NeighborFreqConfig nf;
    nf.channel = spectrum::Channel{spectrum::Rat::kLte, f->earfcn};
    nf.priority = ctx.draw(f->priority, tag + 1);
    nf.q_rxlevmin_dbm = ctx.draw(profile.dmin, tag + 2);
    nf.thresh_high_db = ctx.draw(profile.thresh_high, tag + 3);
    nf.thresh_low_db = ctx.draw(profile.thresh_low, tag + 4);
    nf.q_offset_freq_db = ctx.draw(profile.q_offset_freq, tag + 5);
    nf.meas_bandwidth_mhz = ctx.draw(profile.meas_bandwidth, tag + 6);
    nf.t_reselection = cfg.serving.t_reselection;
    cfg.neighbor_freqs.push_back(nf);
  }
  // Inter-RAT neighbour layers.
  for (const auto& legacy : profile.legacy) {
    if (legacy.share <= 0.0) continue;
    const std::uint64_t tag =
        20'000 + 16ULL * static_cast<std::uint64_t>(legacy.rat);
    config::NeighborFreqConfig nf;
    nf.channel = spectrum::Channel{legacy.rat, legacy_channel(legacy.rat)};
    nf.priority = legacy_priority(legacy.rat);
    nf.q_rxlevmin_dbm = -120.0;
    nf.thresh_high_db = ctx.draw(profile.thresh_high, tag + 1);
    nf.thresh_low_db = ctx.draw(profile.thresh_low, tag + 2);
    nf.q_offset_freq_db = 0.0;
    nf.meas_bandwidth_mhz = 5.0;
    nf.t_reselection = cfg.serving.t_reselection;
    cfg.neighbor_freqs.push_back(nf);
  }

  // Access control (SIB4): a small fraction of cells forbid specific ids.
  if (ctx.chance(0.02, 30)) {
    Rng forbid_rng = ctx.stream(31);
    const int n = static_cast<int>(forbid_rng.between(1, 2));
    for (int i = 0; i < n; ++i)
      cfg.forbidden_cells.push_back(
          static_cast<std::uint32_t>(forbid_rng.below(1u << 28)));
  }

  // Reporting events are signalled per connection and tuned cell by cell in
  // practice — they stay per-cell even for spatially coherent carriers
  // (Fig 21's coherence claim concerns the broadcast idle parameters).
  const DrawCtx event_ctx{
      hash_keys({world_seed, profile.seed_salt, 0xe7e47ULL, cell_id})};
  cfg.report_configs = draw_report_configs(profile, event_ctx);
  return cfg;
}

namespace {

config::LegacyCellConfig make_legacy_config(const CarrierProfile& profile,
                                            const LegacyRatPolicy& policy,
                                            std::uint64_t world_seed,
                                            net::CellId cell_id) {
  Rng rng(hash_keys({world_seed, profile.seed_salt, 0x1e6ac7ULL, cell_id}));
  config::LegacyCellConfig cfg;
  cfg.rat = policy.rat;
  cfg.priority = legacy_priority(policy.rat);
  switch (policy.rat) {
    case spectrum::Rat::kUmts: cfg.q_rxlevmin_dbm = -115.0; break;
    case spectrum::Rat::kGsm: cfg.q_rxlevmin_dbm = -105.0; break;
    case spectrum::Rat::kEvdo: cfg.q_rxlevmin_dbm = -112.0; break;
    default: cfg.q_rxlevmin_dbm = -108.0; break;
  }
  cfg.q_hyst_db = 4.0;
  cfg.t_reselection = rng.chance(0.8) ? 1000 : 2000;
  const int extras = legacy_extra_param_count(policy.rat);
  cfg.extra_params.reserve(extras);
  for (int i = 0; i < extras; ++i) {
    // Carrier-level decision: is parameter i single-valued for this carrier?
    Rng carrier_rng(hash_keys({world_seed, profile.seed_salt, 0xa7a7ULL,
                               static_cast<std::uint64_t>(policy.rat),
                               static_cast<std::uint64_t>(i)}));
    const double base = -20.0 + 1.5 * i;
    if (carrier_rng.chance(policy.param_fixed_prob)) {
      cfg.extra_params.push_back(base);
    } else {
      const int n_values =
          2 + static_cast<int>(carrier_rng.below(
                  static_cast<std::uint64_t>(std::max(1, policy.max_values - 1))));
      // Skewed pick: earlier options dominate.
      std::vector<double> weights(n_values);
      for (int j = 0; j < n_values; ++j)
        weights[j] = 1.0 / static_cast<double>(1 + j);
      const auto pick = rng.weighted(weights);
      cfg.extra_params.push_back(base + 0.5 * static_cast<double>(pick));
    }
  }
  return cfg;
}

std::vector<ConfigUpdate> make_update_schedule(const CarrierProfile& profile,
                                               const WorldOptions& options,
                                               Rng& rng) {
  std::vector<ConfigUpdate> schedule;
  if (rng.chance(profile.idle_update_prob_2y))
    schedule.push_back({rng.uniform(30.0, options.window_days), false});
  if (rng.chance(profile.active_update_prob_2y)) {
    schedule.push_back({rng.uniform(30.0, options.window_days), true});
    if (rng.chance(0.3))
      schedule.push_back({rng.uniform(30.0, options.window_days), true});
  }
  std::sort(schedule.begin(), schedule.end(),
            [](const ConfigUpdate& a, const ConfigUpdate& b) {
              return a.day < b.day;
            });
  return schedule;
}

/// The one generation loop, shared by generate_world (materialise a
/// Deployment) and stream_world (emit and forget).  Both callers therefore
/// consume the identical carrier_rng draw sequence by construction — the
/// determinism contract of streamgen.hpp.  `on_carrier(profile)` returns the
/// CarrierId to stamp on that profile's cells; `on_cell(profile, cell,
/// schedule)` takes each finished cell (may move from both arguments).
template <typename CarrierFn, typename CellFn>
void for_each_generated_cell(const WorldOptions& options,
                             const std::vector<geo::City>& cities,
                             CarrierFn&& on_carrier, CellFn&& on_cell) {
  net::CellId next_id = 1;
  for (const auto& profile : standard_carrier_profiles()) {
    const net::CarrierId cid = on_carrier(profile);

    Rng carrier_rng(hash_keys({options.seed, profile.seed_salt, 0xca1211ULL}));
    const int total = std::max(
        1, static_cast<int>(std::lround(profile.cell_count * options.scale)));

    // City allocation: US carriers across C1..C5, others in their metro.
    std::vector<std::pair<geo::CityId, int>> allocation;
    if (profile.country == "US") {
      int assigned = 0;
      const auto& ids = us_city_ids();
      const auto& weights = us_city_weights();
      for (std::size_t i = 0; i < ids.size(); ++i) {
        int n = (i + 1 == ids.size())
                    ? total - assigned
                    : static_cast<int>(std::lround(total * weights[i]));
        n = std::max(0, std::min(n, total - assigned));
        allocation.emplace_back(ids[i], n);
        assigned += n;
      }
    } else {
      const geo::City* home = nullptr;
      for (const auto& city : cities)
        if (city.country == profile.country) home = &city;
      if (!home)
        throw std::logic_error("netgen: no city for country " + profile.country);
      allocation.emplace_back(home->id, total);
    }

    for (const auto& [city_id, count] : allocation) {
      if (count <= 0) continue;
      const geo::City& city = cities[city_id];

      // City-adjusted frequency weights (Fig 20's Chicago skew).
      std::vector<FreqPolicy> city_freqs = profile.lte_freqs;
      for (auto& f : city_freqs) {
        const auto it = f.city_weight_mult.find(city_id);
        if (it != f.city_weight_mult.end()) f.weight *= it->second;
      }
      std::vector<double> freq_weights;
      freq_weights.reserve(city_freqs.size());
      for (const auto& f : city_freqs) freq_weights.push_back(f.weight);

      // RAT assignment list: legacy shares of the city's cells, rest LTE.
      std::vector<spectrum::Rat> rats(count, spectrum::Rat::kLte);
      std::size_t cursor = 0;
      for (const auto& legacy : profile.legacy) {
        const auto n = static_cast<std::size_t>(
            std::lround(count * legacy.share));
        for (std::size_t i = 0; i < n && cursor < rats.size(); ++i)
          rats[cursor++] = legacy.rat;
      }
      carrier_rng.shuffle(rats);

      // Jittered-grid site placement.
      const int cols =
          std::max(1, static_cast<int>(std::ceil(std::sqrt(count))));
      const double pitch = city.extent_m / cols;
      for (int k = 0; k < count; ++k) {
        net::Cell cell;
        cell.id = next_id++;
        cell.pci = static_cast<std::uint16_t>(cell.id % 504);
        cell.carrier = cid;
        cell.city = city_id;
        const double jx = carrier_rng.uniform(0.15, 0.85);
        const double jy = carrier_rng.uniform(0.15, 0.85);
        cell.position = {city.origin.x + (k % cols + jx) * pitch,
                         city.origin.y + (k / cols + jy) * pitch};
        cell.tx_power_dbm = 15.0 + carrier_rng.normal(0.0, 1.5);
        const double bw_roll = carrier_rng.uniform();
        cell.bandwidth_prbs = bw_roll < 0.5 ? 50 : (bw_roll < 0.8 ? 75 : 100);

        const spectrum::Rat rat = rats[k];
        if (rat == spectrum::Rat::kLte) {
          const auto pick = city_freqs.empty()
                                ? 0
                                : carrier_rng.weighted(freq_weights);
          cell.channel = spectrum::Channel{spectrum::Rat::kLte,
                                           city_freqs[pick].earfcn};
          cell.lte_config =
              make_lte_config(profile, options.seed, cell.id, cell.channel,
                              city_id, cell.position, city_freqs);
        } else {
          const LegacyRatPolicy* policy = nullptr;
          for (const auto& lp : profile.legacy)
            if (lp.rat == rat) policy = &lp;
          cell.channel = spectrum::Channel{rat, legacy_channel(rat)};
          cell.legacy_config =
              make_legacy_config(profile, *policy, options.seed, cell.id);
        }
        auto schedule = make_update_schedule(profile, options, carrier_rng);
        on_cell(profile, cell, schedule);
      }
    }
  }
}

}  // namespace

GeneratedWorld generate_world(const WorldOptions& options) {
  GeneratedWorld world;
  world.options = options;

  const auto cities = standard_cities();
  for (const auto& city : cities) world.network.add_city(city);

  for_each_generated_cell(
      options, cities,
      [&](const CarrierProfile& profile) {
        net::Carrier carrier;
        carrier.name = profile.name;
        carrier.acronym = profile.acronym;
        carrier.country = profile.country;
        world.profiles.push_back(&profile);
        return world.network.add_carrier(carrier);
      },
      [&](const CarrierProfile&, net::Cell& cell,
          std::vector<ConfigUpdate>& schedule) {
        world.network.add_cell(std::move(cell));
        world.update_schedule.push_back(std::move(schedule));
      });
  return world;
}

namespace {

/// The actual reconfiguration draw.  Takes the target cell by reference and
/// nothing else mutable — the compiler enforces that an update can write
/// only that cell, the invariant the parallel crawl engine's per-carrier
/// sharding is built on (asserted by ApplyConfigUpdate.WritesOnlyTargetCell).
void apply_config_update_to_cell(net::Cell& cell, const CarrierProfile& profile,
                                 std::uint64_t world_seed,
                                 const ConfigUpdate& update) {
  Rng rng(hash_keys({world_seed, profile.seed_salt, 0x09da7eULL, cell.id,
                     static_cast<std::uint64_t>(update.day * 16.0)}));
  if (update.active_params) {
    const DrawCtx ctx{rng.next_u64()};
    cell.lte_config.report_configs = draw_report_configs(profile, ctx);
  } else {
    switch (rng.below(3)) {
      case 0:
        cell.lte_config.serving.s_nonintrasearch_db =
            profile.s_nonintra.sample(rng);
        break;
      case 1:
        cell.lte_config.serving.thresh_serving_low_db =
            profile.thresh_serving_low.sample(rng);
        break;
      default:
        cell.lte_config.q_offset_equal_db = profile.q_offset_equal.sample(rng);
        break;
    }
  }
}

}  // namespace

void apply_config_update(GeneratedWorld& world, std::size_t cell_index,
                         const ConfigUpdate& update) {
  net::Cell& cell = world.network.cell_at(cell_index);
  if (!cell.is_lte()) return;  // legacy configs are static in the model
  // profiles is aligned with carriers() *positions*; carrier ids are opaque
  // labels (need not be dense), so resolve through carrier_position().
  const std::size_t pos = world.network.carrier_position(cell.carrier);
  if (pos == net::Deployment::kNoCarrier)
    throw std::logic_error("apply_config_update: cell references unknown carrier");
  apply_config_update_to_cell(cell, *world.profiles.at(pos),
                              world.options.seed, update);
}

StreamStats stream_world(const StreamWorldOptions& options, SnapshotSink& sink) {
  WorldOptions wopts;
  wopts.seed = options.seed;
  wopts.scale = options.scale;
  wopts.window_days = options.window_days;

  const auto cities = standard_cities();
  const int visits = std::max(1, options.visits_per_cell);

  StreamStats stats;
  net::CarrierId next_cid = 0;
  std::vector<double> visit_days;
  std::vector<config::ParamObservation> params;
  for_each_generated_cell(
      wopts, cities, [&](const CarrierProfile&) { return next_cid++; },
      [&](const CarrierProfile& profile, net::Cell& cell,
          std::vector<ConfigUpdate>& schedule) {
        ++stats.cells;
        // Visit times come from a per-cell stream independent of the world
        // draws, so changing visits_per_cell never perturbs the cells.
        Rng visit_rng(hash_keys({options.seed, 0x51c17ULL, cell.id}));
        visit_days.clear();
        for (int v = 0; v < visits; ++v)
          visit_days.push_back(visit_rng.uniform(0.0, options.window_days));
        std::sort(visit_days.begin(), visit_days.end());

        std::size_t next_update = 0;
        for (const double day : visit_days) {
          // Reconfigurations that landed since the last visit (Fig 13);
          // legacy configs are static in the model, matching
          // apply_config_update's early-out.
          while (next_update < schedule.size() &&
                 schedule[next_update].day <= day) {
            if (cell.is_lte()) {
              apply_config_update_to_cell(cell, profile, options.seed,
                                          schedule[next_update]);
              ++stats.updates_applied;
            }
            ++next_update;
          }
          params = cell.is_lte()
                       ? config::extract_parameters(cell.lte_config)
                       : config::extract_parameters(cell.legacy_config);
          sink.snapshot(profile.name, cell.id, cell.channel.rat,
                        cell.channel.number, cell.position,
                        SimTime::from_days(day), params);
          ++stats.snapshots;
          stats.rows += params.size();
        }
      });
  return stats;
}

}  // namespace mmlab::netgen
