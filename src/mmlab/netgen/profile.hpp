// Per-carrier configuration-policy profiles.
//
// The paper's D2 dataset is a joint distribution of handoff parameters over
// 32k cells of 30 carriers; every large-scale figure (12-22) is a statistic
// of it.  A CarrierProfile encodes one carrier's policy as the paper
// reports it: which LTE channels it runs and with what priorities (Fig 18),
// how each tunable parameter is distributed (Figs 14-17), how spatially
// coherent the values are (Fig 21: T-Mobile uniform within a market, AT&T
// per-cell), the legacy-RAT mix (Tab 4) and per-RAT parameter diversity
// (Fig 22), and the temporal reconfiguration rates (Fig 13).
//
// Calibration targets come from the paper's figures, not its raw data (long
// unavailable); EXPERIMENTS.md tracks how closely the regenerated statistics
// land.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "mmlab/config/events.hpp"
#include "mmlab/geo/region.hpp"
#include "mmlab/spectrum/bands.hpp"
#include "mmlab/stats/discrete.hpp"
#include "mmlab/util/clock.hpp"

namespace mmlab::netgen {

/// One LTE channel a carrier operates, with its serving-cell share and the
/// priority policy on that channel (multi-valued = the Fig 18 conflicts).
struct FreqPolicy {
  std::uint32_t earfcn = 0;
  double weight = 1.0;  ///< share of the carrier's LTE cells on this channel
  stats::Discrete<int> priority;
  /// Optional per-city multiplier on `weight` (drives Fig 20's city skew).
  std::map<geo::CityId, double> city_weight_mult;
};

/// One decisive reporting-event policy (the cell's handoff trigger).
struct EventPolicy {
  config::EventType type = config::EventType::kA3;
  config::SignalMetric metric = config::SignalMetric::kRsrp;
  double weight = 1.0;
  stats::Discrete<double> threshold1;  ///< serving threshold (A5/B2)
  stats::Discrete<double> threshold2;  ///< candidate threshold (A4/A5)
  stats::Discrete<double> offset;      ///< A3 offset
  stats::Discrete<double> hysteresis;
  stats::Discrete<Millis> report_interval;  ///< for periodic reporting
};

/// Legacy-RAT presence and parameter-diversity policy.
struct LegacyRatPolicy {
  spectrum::Rat rat = spectrum::Rat::kUmts;
  double share = 0.0;          ///< of the carrier's cells
  double param_fixed_prob = 0.8;  ///< P(parameter single-valued carrier-wide)
  int max_values = 4;          ///< richness cap for variable parameters
};

struct CarrierProfile {
  std::string name;
  std::string acronym;  ///< Tab 3 bold letters
  std::string country;
  int cell_count = 100;         ///< at scale 1.0 (Fig 12)
  double tract_m = 0.0;         ///< spatial coherence: 0 = per-cell draws,
                                ///< else one draw per tract_m-sized tract
  std::uint64_t seed_salt = 0;  ///< per-carrier RNG stream separation

  std::vector<FreqPolicy> lte_freqs;
  std::vector<LegacyRatPolicy> legacy;

  // Idle-state (SIB) parameter distributions.
  stats::Discrete<double> dmin;                ///< ∆min (q-RxLevMin)
  stats::Discrete<double> q_hyst;              ///< Hs
  stats::Discrete<double> s_intra;             ///< Θintra
  stats::Discrete<double> s_nonintra;          ///< Θnonintra
  stats::Discrete<double> thresh_serving_low;  ///< Θ(s)lower
  stats::Discrete<double> q_offset_equal;      ///< ∆equal
  stats::Discrete<Millis> t_resel;
  stats::Discrete<double> thresh_high;         ///< Θ(c)higher
  stats::Discrete<double> thresh_low;          ///< Θ(c)lower
  stats::Discrete<double> q_offset_freq;       ///< ∆freq
  stats::Discrete<double> meas_bandwidth;

  // Reporting-event policy.
  double a2_gate_prob = 0.9;  ///< P(cell configures an A2 measurement gate)
  stats::Discrete<double> a2_threshold;
  stats::Discrete<double> a2_hysteresis;
  std::vector<EventPolicy> decisive;   ///< exactly one drawn per cell
  double extra_periodic_prob = 0.0;    ///< P(additional P config on top)
  stats::Discrete<Millis> ttt;         ///< TreportTrigger (shared)
  stats::Discrete<Millis> periodic_interval;

  /// Probability that a cell's (Θintra, Θnonintra) pair is swapped —
  /// the rare counterexamples of §4.2 (two carriers, specific areas).
  double swapped_search_prob = 0.0;

  /// Fig 13 temporal dynamics: probability a cell's idle/active parameters
  /// are reconfigured at least once over the two-year collection window.
  double idle_update_prob_2y = 0.02;
  double active_update_prob_2y = 0.33;
};

/// All 30 carriers of Tab 3, fully calibrated.
const std::vector<CarrierProfile>& standard_carrier_profiles();

/// The measurement cities. US: C1 Chicago, C2 LA, C3 Indianapolis,
/// C4 Columbus, C5 Lafayette (Fig 20); one metro per non-US country.
std::vector<geo::City> standard_cities();

/// City ids for the US cities, in C1..C5 order.
const std::vector<geo::CityId>& us_city_ids();

/// Share of a US carrier's cells per US city (C1..C5), matching Fig 20's
/// relative totals.
const std::vector<double>& us_city_weights();

}  // namespace mmlab::netgen
