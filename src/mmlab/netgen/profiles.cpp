// Calibrated carrier catalogue (Tab 3).  Distributions are tuned so the
// crawled dataset reproduces the paper's reported statistics; see
// EXPERIMENTS.md for the target-vs-measured ledger.
#include "mmlab/netgen/profile.hpp"

namespace mmlab::netgen {

namespace {

using D = stats::Discrete<double>;
using DM = stats::Discrete<Millis>;
using DI = stats::Discrete<int>;
using config::EventType;
using config::SignalMetric;

DI prio(std::initializer_list<std::pair<int, double>> entries) {
  return DI(entries);
}

FreqPolicy freq(std::uint32_t earfcn, double weight, DI priority) {
  FreqPolicy f;
  f.earfcn = earfcn;
  f.weight = weight;
  f.priority = std::move(priority);
  return f;
}

EventPolicy a3_policy(double weight, D offset, D hysteresis) {
  EventPolicy p;
  p.type = EventType::kA3;
  p.metric = SignalMetric::kRsrp;
  p.weight = weight;
  p.offset = std::move(offset);
  p.hysteresis = std::move(hysteresis);
  return p;
}

EventPolicy a5_policy(double weight, SignalMetric metric, D th_serving,
                      D th_candidate, D hysteresis) {
  EventPolicy p;
  p.type = EventType::kA5;
  p.metric = metric;
  p.weight = weight;
  p.threshold1 = std::move(th_serving);
  p.threshold2 = std::move(th_candidate);
  p.hysteresis = std::move(hysteresis);
  return p;
}

EventPolicy periodic_policy(double weight, DM interval) {
  EventPolicy p;
  p.type = EventType::kPeriodic;
  p.weight = weight;
  p.report_interval = std::move(interval);
  return p;
}

/// Baseline every profile starts from; carriers override what makes them
/// distinctive.  Values follow the common practice the paper reports
/// (∆min -122, Hs 4 dB, Θintra 62, modal A3 offset 3 dB).
CarrierProfile base_profile() {
  CarrierProfile p;
  p.dmin = D{{-122, 0.9}, {-124, 0.06}, {-120, 0.04}};
  p.q_hyst = D::fixed(4);
  p.s_intra = D{{62, 0.9}, {42, 0.05}, {52, 0.03}, {22, 0.02}};
  p.s_nonintra = D{{8, 0.55}, {28, 0.2}, {6, 0.1}, {4, 0.1}, {2, 0.05}};
  p.thresh_serving_low = D{{6, 0.7}, {4, 0.1}, {8, 0.1}, {10, 0.05}, {2, 0.05}};
  p.q_offset_equal = D{{4, 0.85}, {2, 0.1}, {6, 0.05}};
  p.t_resel = DM{{1000, 0.7}, {2000, 0.25}, {0, 0.05}};
  // Θ(c)higher sits high on the Srxlev scale: operators only pull devices
  // up to a higher-priority layer once it is decently strong, yet a weaker-
  // than-serving target remains possible (the Fig 10 finding).
  p.thresh_high = D{{26, 0.3}, {30, 0.25}, {34, 0.2}, {22, 0.15}, {38, 0.05},
                    {18, 0.05}};
  p.thresh_low = D{{4, 0.55}, {2, 0.15}, {6, 0.1}, {8, 0.1}, {10, 0.05}, {0, 0.05}};
  p.q_offset_freq = D{{0, 0.7}, {2, 0.1}, {4, 0.08}, {-2, 0.06}, {6, 0.04}, {1, 0.02}};
  p.meas_bandwidth = D{{10, 0.6}, {20, 0.25}, {5, 0.15}};
  p.a2_gate_prob = 0.9;
  p.a2_threshold = D{{-110, 0.4}, {-112, 0.2}, {-108, 0.15}, {-115, 0.1},
                     {-105, 0.1}, {-118, 0.05}};
  p.a2_hysteresis = D{{1, 0.6}, {2, 0.4}};
  p.decisive = {
      a3_policy(0.6, D{{3, 0.5}, {2, 0.25}, {4, 0.25}}, D{{1, 0.7}, {2, 0.3}}),
      a5_policy(0.25, SignalMetric::kRsrp, D{{-112, 0.5}, {-118, 0.5}},
                D{{-108, 0.5}, {-112, 0.5}}, D{{1, 0.7}, {2, 0.3}}),
      periodic_policy(0.15, DM{{1024, 0.5}, {2048, 0.5}}),
  };
  p.extra_periodic_prob = 0.2;
  p.ttt = DM{{320, 0.3}, {256, 0.2}, {480, 0.2}, {128, 0.15}, {640, 0.15}};
  p.periodic_interval = DM{{1024, 0.5}, {2048, 0.3}, {5120, 0.2}};
  return p;
}

CarrierProfile att_profile() {
  CarrierProfile p = base_profile();
  p.name = "AT&T";
  p.acronym = "A";
  p.country = "US";
  p.cell_count = 7000;
  p.tract_m = 0.0;  // per-cell draws: AT&T fine-tunes cell by cell (Fig 21)
  p.seed_salt = 0xA77;

  // Fig 18: serving cells concentrate on 850/1975/2000/5110/5780/9820;
  // LTE-exclusive 700 MHz bands (12/17) get LOW priority 2, band 30 (9820,
  // 2300 WCS, newly acquired) the HIGHEST; some channels are multi-valued
  // (the 6.3 % conflicting-priority story).
  p.lte_freqs = {
      freq(675, 0.008, prio({{3, 1}})),  freq(700, 0.008, prio({{3, 1}})),
      freq(725, 0.008, prio({{3, 1}})),  freq(750, 0.008, prio({{3, 1}})),
      freq(775, 0.008, prio({{3, 1}})),  freq(800, 0.008, prio({{3, 1}})),
      freq(825, 0.008, prio({{3, 1}})),  freq(850, 0.170, prio({{3, 1}})),
      freq(1975, 0.160, prio({{3, 0.82}, {4, 0.18}})),
      freq(2000, 0.140, prio({{3, 0.85}, {4, 0.15}})),
      freq(2175, 0.008, prio({{4, 1}})), freq(2200, 0.008, prio({{4, 1}})),
      freq(2225, 0.008, prio({{4, 1}})),
      freq(2425, 0.010, prio({{4, 0.92}, {5, 0.08}})),
      freq(2430, 0.008, prio({{4, 1}})), freq(2535, 0.008, prio({{4, 1}})),
      freq(2538, 0.008, prio({{4, 1}})), freq(2600, 0.008, prio({{4, 1}})),
      freq(5110, 0.120, prio({{2, 1}})), freq(5145, 0.010, prio({{2, 1}})),
      freq(5330, 0.008, prio({{2, 1}})), freq(5760, 0.010, prio({{2, 1}})),
      freq(5780, 0.140, prio({{2, 1}})),
      freq(5815, 0.010, prio({{2, 0.8}, {3, 0.2}})),
      freq(9000, 0.008, prio({{3, 1}})), freq(9720, 0.010, prio({{6, 1}})),
      freq(9820, 0.100, prio({{5, 0.85}, {4, 0.15}})),
  };
  // Chicago (C1) runs a different band mix (Fig 20): more WCS + 700 a,
  // less 850.
  for (auto& f : p.lte_freqs) {
    if (f.earfcn == 9820) f.city_weight_mult[0] = 2.2;
    if (f.earfcn == 5110) f.city_weight_mult[0] = 1.8;
    if (f.earfcn == 850) f.city_weight_mult[0] = 0.35;
    if (f.earfcn == 1975) f.city_weight_mult[0] = 0.7;
  }

  // Fig 14 calibration.
  p.dmin = D{{-122, 0.994}, {-124, 0.004}, {-94, 0.002}};
  p.s_nonintra = D{{8, 0.40},  {28, 0.22}, {2, 0.05},  {4, 0.05},  {6, 0.05},
                   {10, 0.04}, {12, 0.03}, {14, 0.03}, {16, 0.02}, {18, 0.02},
                   {20, 0.02}, {24, 0.02}, {34, 0.01}, {40, 0.01}, {48, 0.01},
                   {56, 0.01}, {62, 0.01}};
  p.thresh_serving_low =
      D{{6, 0.68},   {4, 0.06},   {8, 0.06},  {2, 0.04},  {10, 0.04},
        {14, 0.03},  {22, 0.02},  {30, 0.02}, {38, 0.015}, {46, 0.01},
        {54, 0.01},  {62, 0.005}, {0, 0.01},  {12, 0.01},  {16, 0.01},
        {18, 0.005}, {20, 0.005}, {24, 0.005}, {26, 0.0025}, {28, 0.0025}};
  p.q_offset_equal = D{{4, 0.8}, {2, 0.1}, {3, 0.05}, {5, 0.03}, {6, 0.02}};

  // Fig 5a event mix: A3 67.4 %, A5 26.1 % (RSRP/RSRQ roughly equal),
  // P 4.4 %.  A5-RSRP's dominant (-44, -114) pairing is the "no serving
  // requirement" policy behind the weaker-after-handoff finding (Fig 6).
  p.decisive = {
      a3_policy(0.674,
                D{{3, 0.78}, {2, 0.06}, {1, 0.04}, {0, 0.04}, {4, 0.04}, {5, 0.04}},
                D{{1, 0.5}, {1.5, 0.2}, {2, 0.2}, {2.5, 0.1}}),
      a5_policy(0.13, SignalMetric::kRsrp, D{{-44, 0.75}, {-118, 0.25}},
                D::fixed(-114), D{{1, 0.7}, {2, 0.3}}),
      a5_policy(0.131, SignalMetric::kRsrq,
                D{{-11.5, 0.35}, {-14, 0.25}, {-16, 0.2}, {-18, 0.2}},
                D{{-14, 0.4}, {-15, 0.25}, {-16.5, 0.2}, {-18.5, 0.15}},
                D{{0.5, 0.6}, {1, 0.4}}),
      periodic_policy(0.065, DM{{1024, 0.5}, {2048, 0.3}, {5120, 0.2}}),
  };
  p.extra_periodic_prob = 0.25;
  // TreportTrigger: broad [40, 1280] spread (Fig 14 rightmost, D = 0.78).
  p.ttt = DM{{40, 0.08},  {64, 0.06},  {80, 0.10},  {128, 0.12}, {256, 0.14},
             {320, 0.16}, {480, 0.12}, {640, 0.12}, {1024, 0.05}, {1280, 0.05}};

  p.legacy = {
      {spectrum::Rat::kUmts, 0.18, 0.55, 6},
      {spectrum::Rat::kGsm, 0.07, 0.95, 2},
  };
  return p;
}

CarrierProfile tmobile_profile() {
  CarrierProfile p = base_profile();
  p.name = "T-Mobile";
  p.acronym = "T";
  p.country = "US";
  p.cell_count = 5200;
  p.tract_m = 8000.0;  // uniform within a market area: Fig 21 ζ ≈ 0
  p.seed_salt = 0x7E0;
  // One flat priority across all channels: Fig 21 reports T-Mobile's spatial
  // configuration diversity as essentially zero, which requires that nearby
  // cells on different channels still agree.
  p.lte_freqs = {
      freq(675, 0.10, prio({{4, 1}})),  freq(800, 0.10, prio({{4, 1}})),
      freq(1975, 0.25, prio({{4, 1}})), freq(2000, 0.20, prio({{4, 1}})),
      freq(2175, 0.10, prio({{4, 1}})),
      freq(5110, 0.25, prio({{4, 1}})),
  };
  // Fig 5b: ∆A3 in [-1, 15], dominant {3,4,5}; HA3 in [0,5], dominant 1.
  p.decisive = {
      a3_policy(0.68,
                D{{3, 0.28}, {4, 0.24}, {5, 0.22}, {-1, 0.04}, {0, 0.02},
                  {1, 0.03}, {2, 0.05}, {8, 0.04}, {10, 0.04}, {12, 0.02},
                  {15, 0.02}},
                D{{1, 0.72}, {0, 0.08}, {2, 0.08}, {3, 0.05}, {4, 0.04},
                  {5, 0.03}}),
      a5_policy(0.10, SignalMetric::kRsrp,
                D{{-87, 0.3}, {-95, 0.2}, {-105, 0.2}, {-112, 0.15}, {-121, 0.15}},
                D{{-101, 0.3}, {-108, 0.3}, {-112, 0.25}, {-118, 0.15}},
                D{{1, 0.7}, {2, 0.3}}),
      periodic_policy(0.22, DM{{1024, 0.6}, {2048, 0.4}}),
  };
  p.extra_periodic_prob = 0.15;
  p.legacy = {
      {spectrum::Rat::kUmts, 0.17, 0.6, 5},
      {spectrum::Rat::kGsm, 0.08, 0.95, 2},
  };
  return p;
}

CarrierProfile verizon_profile() {
  CarrierProfile p = base_profile();
  p.name = "Verizon";
  p.acronym = "V";
  p.country = "US";
  p.cell_count = 4200;
  p.tract_m = 300.0;  // visible micro-diversity at 0.5 km (Fig 21)
  p.seed_salt = 0x0E5;
  p.lte_freqs = {
      freq(5230, 0.45, prio({{6, 0.9}, {5, 0.1}})),  // band 13 (700 c), core
      freq(2050, 0.20, prio({{4, 1}})),
      freq(2175, 0.15, prio({{4, 0.8}, {5, 0.2}})),
      freq(750, 0.10, prio({{3, 1}})),
      freq(66486, 0.10, prio({{5, 1}})),  // AWS-3
  };
  p.thresh_serving_low =
      D{{6, 0.5}, {4, 0.15}, {8, 0.12}, {10, 0.08}, {2, 0.05}, {12, 0.04},
        {14, 0.03}, {16, 0.03}};
  p.decisive = {
      a3_policy(0.62, D{{2, 0.35}, {3, 0.35}, {4, 0.2}, {1, 0.05}, {5, 0.05}},
                D{{1, 0.6}, {2, 0.4}}),
      a5_policy(0.23, SignalMetric::kRsrp,
                D{{-110, 0.4}, {-116, 0.35}, {-120, 0.25}},
                D{{-106, 0.5}, {-112, 0.5}}, D{{1, 0.7}, {2, 0.3}}),
      periodic_policy(0.15, DM{{1024, 0.5}, {2048, 0.5}}),
  };
  p.legacy = {
      {spectrum::Rat::kEvdo, 0.18, 0.9, 3},
      {spectrum::Rat::kCdma1x, 0.12, 0.95, 2},
  };
  return p;
}

CarrierProfile sprint_profile() {
  CarrierProfile p = base_profile();
  p.name = "Sprint";
  p.acronym = "S";
  p.country = "US";
  p.cell_count = 2600;
  p.tract_m = 300.0;
  p.seed_salt = 0x59A;
  p.lte_freqs = {
      freq(8365, 0.40, prio({{4, 1}})),                 // band 25
      freq(40162, 0.25, prio({{5, 0.8}, {6, 0.2}})),    // band 41
      freq(39874, 0.20, prio({{5, 1}})),                // band 41
      freq(8763, 0.15, prio({{3, 1}})),                 // band 26
  };
  p.decisive = {
      a3_policy(0.55, D{{2, 0.4}, {3, 0.3}, {4, 0.2}, {6, 0.1}},
                D{{1, 0.5}, {2, 0.5}}),
      a5_policy(0.30, SignalMetric::kRsrp,
                D{{-108, 0.4}, {-114, 0.35}, {-119, 0.25}},
                D{{-104, 0.5}, {-110, 0.5}}, D::fixed(1)),
      periodic_policy(0.15, DM{{2048, 0.6}, {5120, 0.4}}),
  };
  p.legacy = {
      {spectrum::Rat::kEvdo, 0.18, 0.88, 3},
      {spectrum::Rat::kCdma1x, 0.12, 0.95, 2},
  };
  return p;
}

CarrierProfile china_mobile_profile() {
  CarrierProfile p = base_profile();
  p.name = "China Mobile";
  p.acronym = "CM";
  p.country = "CN";
  p.cell_count = 4000;
  p.tract_m = 0.0;
  p.seed_salt = 0xC40;
  p.lte_freqs = {
      freq(37900, 0.30, prio({{5, 0.6}, {6, 0.4}})),  // band 38
      freq(38400, 0.25, prio({{5, 1}})),              // band 39
      freq(38950, 0.20, prio({{4, 0.7}, {5, 0.3}})),  // band 40
      freq(40340, 0.25, prio({{6, 0.8}, {7, 0.2}})),  // band 41
  };
  p.thresh_serving_low =
      D{{6, 0.45}, {8, 0.15}, {4, 0.12}, {10, 0.1}, {2, 0.08}, {12, 0.05},
        {16, 0.05}};
  p.decisive = {
      a3_policy(0.6, D{{2, 0.3}, {3, 0.3}, {4, 0.2}, {5, 0.1}, {6, 0.1}},
                D{{1, 0.5}, {2, 0.3}, {1.5, 0.2}}),
      a5_policy(0.25, SignalMetric::kRsrp,
                D{{-109, 0.35}, {-115, 0.35}, {-119, 0.3}},
                D{{-105, 0.5}, {-111, 0.5}}, D{{1, 0.6}, {2, 0.4}}),
      periodic_policy(0.15, DM{{1024, 0.6}, {2048, 0.4}}),
  };
  p.legacy = {
      {spectrum::Rat::kUmts, 0.10, 0.6, 5},
      {spectrum::Rat::kGsm, 0.18, 0.95, 2},
  };
  return p;
}

CarrierProfile sk_telecom_profile() {
  // Fig 17: SK Telecom shows the lowest diversity — effectively single
  // values for every parameter.
  CarrierProfile p = base_profile();
  p.name = "SK Telecom";
  p.acronym = "SK";
  p.country = "KR";
  p.cell_count = 900;
  p.tract_m = 0.0;
  p.seed_salt = 0x5CE;
  p.lte_freqs = {
      freq(1275, 0.6, prio({{6, 1}})),  // band 3
      freq(2500, 0.4, prio({{6, 1}})),  // band 5: same single value — Fig 17
  };
  p.dmin = D::fixed(-122);
  p.s_intra = D::fixed(62);
  p.s_nonintra = D::fixed(8);
  p.thresh_serving_low = D::fixed(6);
  p.q_offset_equal = D::fixed(4);
  p.t_resel = DM::fixed(1000);
  p.thresh_high = D::fixed(10);
  p.thresh_low = D::fixed(4);
  p.q_offset_freq = D::fixed(0);
  p.meas_bandwidth = D::fixed(10);
  p.a2_threshold = D::fixed(-110);
  p.a2_hysteresis = D::fixed(1);
  p.decisive = {a3_policy(1.0, D::fixed(3), D::fixed(2))};
  p.extra_periodic_prob = 0.0;
  p.ttt = DM::fixed(320);
  p.legacy = {{spectrum::Rat::kUmts, 0.12, 0.95, 2}};
  return p;
}

CarrierProfile mobileone_profile() {
  // MobileOne: low (but not zero) diversity.
  CarrierProfile p = base_profile();
  p.name = "MobileOne";
  p.acronym = "MO";
  p.country = "SG";
  p.cell_count = 420;
  p.tract_m = 0.0;
  p.seed_salt = 0x401;
  p.lte_freqs = {
      freq(1400, 0.55, prio({{5, 1}})),  // band 3
      freq(3675, 0.45, prio({{4, 1}})),  // band 8
  };
  p.dmin = D::fixed(-122);
  p.s_intra = D::fixed(62);
  p.s_nonintra = D{{8, 0.7}, {10, 0.3}};
  p.thresh_serving_low = D::fixed(6);
  p.q_offset_equal = D::fixed(4);
  p.t_resel = DM::fixed(1000);
  p.decisive = {a3_policy(0.9, D{{2, 0.6}, {3, 0.4}}, D::fixed(1)),
                periodic_policy(0.1, DM::fixed(2048))};
  p.extra_periodic_prob = 0.05;
  p.ttt = DM{{320, 0.8}, {480, 0.2}};
  p.legacy = {{spectrum::Rat::kUmts, 0.15, 0.9, 2}};
  return p;
}

/// Mid-size carrier with moderate diversity; `variant` perturbs which values
/// dominate so carriers stay distinguishable (Fig 15: "each parameter
/// configuration is carrier specific").
CarrierProfile regional_profile(std::string name, std::string acronym,
                                std::string country, int cells,
                                std::uint64_t salt, int variant,
                                double umts_share = 0.18,
                                double gsm_share = 0.06) {
  CarrierProfile p = base_profile();
  p.name = std::move(name);
  p.acronym = std::move(acronym);
  p.country = std::move(country);
  p.cell_count = cells;
  p.tract_m = (variant % 3 == 0) ? 500.0 : 0.0;
  p.seed_salt = salt;
  const std::uint32_t chan_a = 1200 + 25 * static_cast<std::uint32_t>(variant % 8);
  const std::uint32_t chan_b = 100 + 50 * static_cast<std::uint32_t>(variant % 6);
  const std::uint32_t chan_c = 2800 + 100 * static_cast<std::uint32_t>(variant % 5);
  const int pa = 4 + variant % 3, pb = 3 + variant % 2;
  p.lte_freqs = {
      freq(chan_a, 0.5, prio({{pa, 0.85}, {pa - 1, 0.15}})),
      freq(chan_b, 0.3, prio({{pb, 1}})),
      freq(chan_c, 0.2, prio({{5, 0.7}, {6, 0.3}})),
  };
  const double off = 2 + variant % 3;
  p.decisive = {
      a3_policy(0.6, D{{off, 0.6}, {off + 1, 0.25}, {off - 1, 0.15}},
                D{{1, 0.7}, {2, 0.3}}),
      a5_policy(0.25, SignalMetric::kRsrp,
                D{{-108 - variant % 6, 0.6}, {-116, 0.4}},
                D{{-106, 0.5}, {-110, 0.5}}, D::fixed(1)),
      periodic_policy(0.15, DM{{1024, 0.5}, {2048, 0.5}}),
  };
  p.legacy = {{spectrum::Rat::kUmts, umts_share, 0.7, 4},
              {spectrum::Rat::kGsm, gsm_share, 0.95, 2}};
  return p;
}

std::vector<CarrierProfile> build_profiles() {
  std::vector<CarrierProfile> out;
  out.push_back(att_profile());
  out.push_back(tmobile_profile());
  out.push_back(verizon_profile());
  out.push_back(sprint_profile());
  out.push_back(china_mobile_profile());

  auto cu = regional_profile("China Unicom", "CU", "CN", 1500, 0xC01, 1);
  cu.swapped_search_prob = 0.004;  // one of §4.2's two counterexample carriers
  out.push_back(std::move(cu));

  auto ct = regional_profile("China Telecom", "CT", "CN", 1300, 0xC7E, 2, 0.0, 0.0);
  ct.legacy = {{spectrum::Rat::kEvdo, 0.18, 0.9, 3},
               {spectrum::Rat::kCdma1x, 0.10, 0.95, 2}};
  out.push_back(std::move(ct));

  out.push_back(regional_profile("Korea Telecom", "KT", "KR", 950, 0x107, 3, 0.15, 0.0));
  out.push_back(sk_telecom_profile());
  out.push_back(mobileone_profile());
  out.push_back(regional_profile("SingTel", "SI", "SG", 380, 0x516, 4));
  out.push_back(regional_profile("Starhub", "ST", "SG", 350, 0x57A, 5));

  auto th = regional_profile("Three", "TH", "HK", 260, 0x733, 6);
  th.swapped_search_prob = 0.003;  // the second counterexample carrier
  out.push_back(std::move(th));

  out.push_back(regional_profile("China Mobile HK", "CH", "HK", 230, 0xC44, 7));
  out.push_back(regional_profile("Chunghwa Telecom", "CW", "TW", 300, 0xC37, 8));
  out.push_back(regional_profile("Taiwan Cellular", "TC", "TW", 270, 0x7C1, 9));
  out.push_back(regional_profile("NetCom", "NC", "NO", 160, 0x4C0, 10));

  // The 13 "others" (Tab 3): small footprints, <100 cells each.
  struct Other {
    const char* name;
    const char* acr;
    const char* country;
    int cells;
  };
  const Other others[] = {
      {"Orange", "OR", "FR", 95},        {"Deutsche Telekom", "DT", "DE", 90},
      {"Vodafone", "VO", "ES", 85},      {"MoviStar", "MS", "MX", 80},
      {"EE", "EE", "GB", 75},            {"Telia", "TE", "SE", 70},
      {"NTT Docomo", "ND", "JP", 90},    {"SoftBank", "SB", "JP", 60},
      {"Airtel", "AI", "IN", 85},        {"Rogers", "RO", "CA", 70},
      {"Telstra", "TS", "AU", 65},       {"TIM", "TI", "IT", 60},
      {"Proximus", "PX", "BE", 55},
  };
  int variant = 11;
  for (const auto& o : others)
    out.push_back(regional_profile(o.name, o.acr, o.country, o.cells,
                                   0x900 + variant, variant++));
  return out;
}

}  // namespace

const std::vector<CarrierProfile>& standard_carrier_profiles() {
  static const std::vector<CarrierProfile> kProfiles = build_profiles();
  return kProfiles;
}

std::vector<geo::City> standard_cities() {
  // US cities C1..C5 first (ids 0..4), then one metro per other country.
  // Cities are laid out on a sparse world grid so their areas never overlap.
  std::vector<geo::City> cities;
  auto add = [&](const char* name, const char* code, const char* country,
                 double extent_m) {
    geo::City c;
    c.id = static_cast<geo::CityId>(cities.size());
    c.name = name;
    c.code = code;
    c.country = country;
    const double pitch = 100'000.0;
    c.origin = {static_cast<double>(cities.size() % 6) * pitch,
                static_cast<double>(cities.size() / 6) * pitch};
    c.extent_m = extent_m;
    cities.push_back(std::move(c));
  };
  add("Chicago", "C1", "US", 24'000);
  add("Los Angeles", "C2", "US", 22'000);
  add("Indianapolis", "C3", "US", 16'000);
  add("Columbus", "C4", "US", 13'000);
  add("Lafayette", "C5", "US", 9'000);
  add("Beijing", "B1", "CN", 24'000);
  add("Seoul", "K1", "KR", 18'000);
  add("Singapore", "S1", "SG", 14'000);
  add("Hong Kong", "H1", "HK", 12'000);
  add("Taipei", "W1", "TW", 13'000);
  add("Oslo", "N1", "NO", 10'000);
  add("Paris", "F1", "FR", 10'000);
  add("Berlin", "D1", "DE", 10'000);
  add("Madrid", "E1", "ES", 10'000);
  add("Mexico City", "M1", "MX", 10'000);
  add("London", "G1", "GB", 10'000);
  add("Stockholm", "SE1", "SE", 9'000);
  add("Tokyo", "J1", "JP", 12'000);
  add("Delhi", "I1", "IN", 10'000);
  add("Toronto", "CA1", "CA", 9'000);
  add("Sydney", "AU1", "AU", 9'000);
  add("Rome", "IT1", "IT", 9'000);
  add("Brussels", "BE1", "BE", 8'000);
  return cities;
}

const std::vector<geo::CityId>& us_city_ids() {
  static const std::vector<geo::CityId> kIds = {0, 1, 2, 3, 4};
  return kIds;
}

const std::vector<double>& us_city_weights() {
  // Proportional to Fig 20's per-city cell totals:
  // 4671 : 2982 : 2348 : 1268 : 745.
  static const std::vector<double> kWeights = {0.389, 0.248, 0.195, 0.106,
                                               0.062};
  return kWeights;
}

}  // namespace mmlab::netgen
