// Deterministic pseudo-random number generation.
//
// Every stochastic process in the simulator (deployment layout, shadowing,
// fading, route jitter, configuration assignment) draws from an explicitly
// seeded Rng so that each figure regenerates bit-for-bit.  We implement
// xoshiro256++ (public-domain algorithm by Blackman & Vigna) seeded through
// splitmix64, rather than std::mt19937, so the stream is stable across
// standard-library implementations.
#pragma once

#include <cmath>
#include <cstdint>
#include <cstddef>
#include <vector>

namespace mmlab {

/// splitmix64 step; used for seeding and for cheap hash mixing.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256++ generator with convenience distributions.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  /// Derive an independent child stream; `salt` distinguishes siblings.
  Rng fork(std::uint64_t salt) const {
    std::uint64_t sm = state_[0] ^ (salt * 0x9e3779b97f4a7c15ULL) ^ state_[3];
    return Rng{splitmix64(sm)};
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t below(std::uint64_t n) {
    // Lemire's unbiased bounded generation.
    std::uint64_t x = next_u64();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = (0 - n) % n;
      while (lo < threshold) {
        x = next_u64();
        m = static_cast<__uint128_t>(x) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t between(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  bool chance(double p) { return uniform() < p; }

  /// Standard normal via Marsaglia polar method.
  double normal() {
    if (has_spare_) {
      has_spare_ = false;
      return spare_;
    }
    double u, v, s;
    do {
      u = uniform(-1.0, 1.0);
      v = uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double k = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * k;
    has_spare_ = true;
    return u * k;
  }

  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  double exponential(double mean) { return -mean * std::log(1.0 - uniform()); }

  /// Draw an index from a discrete distribution given non-negative weights.
  std::size_t weighted(const std::vector<double>& weights);

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
  double spare_ = 0.0;
  bool has_spare_ = false;
};

}  // namespace mmlab
