// Byte-granular serialization for the MMDS binary dataset format.
//
// Complements util/bitio (bit-packed, for the RRC codec) with the byte-level
// primitives a file format wants: LEB128 varints, zigzag-mapped signed
// varints, raw little-endian scalars, and buffered file streaming with an
// incremental CRC-16 so multi-hundred-MB datasets never need a full
// in-memory copy on the write path.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace mmlab {

/// Error thrown when a read runs past the end of the buffer or hits a
/// malformed (over-long) varint.
class ByteUnderflow : public std::runtime_error {
 public:
  explicit ByteUnderflow(const char* what) : std::runtime_error(what) {}
  ByteUnderflow() : std::runtime_error("byte buffer underflow") {}
};

/// Zigzag mapping: interleaves negative and positive values so small-
/// magnitude signed integers get small varints (-1 -> 1, 1 -> 2, ...).
constexpr std::uint64_t zigzag_encode(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}
constexpr std::int64_t zigzag_decode(std::uint64_t u) {
  return static_cast<std::int64_t>((u >> 1) ^ (~(u & 1) + 1));
}

/// Append-only in-memory byte buffer with varint/scalar encoders.
class ByteWriter {
 public:
  void u8(std::uint8_t v) { bytes_.push_back(v); }
  void u16le(std::uint16_t v);
  /// Raw IEEE-754 bit pattern, little-endian — bit-exact round trip for
  /// every double including NaN payloads and signed zero.
  void f64le(double v);
  /// LEB128: 7 value bits per byte, high bit = continuation. 1..10 bytes.
  void varint(std::uint64_t v);
  void svarint(std::int64_t v) { varint(zigzag_encode(v)); }
  void raw(const void* data, std::size_t size);
  /// varint length prefix + bytes.
  void str(std::string_view s);

  std::size_t size() const { return bytes_.size(); }
  const std::vector<std::uint8_t>& buffer() const { return bytes_; }
  std::vector<std::uint8_t> take() && { return std::move(bytes_); }
  void clear() { bytes_.clear(); }

 private:
  std::vector<std::uint8_t> bytes_;
};

/// Sequential reader over a caller-owned byte span. Throws ByteUnderflow on
/// truncation or malformed varints; the dataset loader converts that into a
/// load error instead of a silent partial load.
class ByteReader {
 public:
  ByteReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}
  explicit ByteReader(const std::vector<std::uint8_t>& buf)
      : ByteReader(buf.data(), buf.size()) {}

  std::uint8_t u8();
  std::uint16_t u16le();
  double f64le();
  /// LEB128 decode.  Fast path: when at least 10 bytes remain (the longest
  /// legal varint), an 8-byte little-endian word is scanned branch-free for
  /// the first clear continuation bit and its 7-bit groups compacted in
  /// O(1) — covering every varint of up to 8 encoded bytes (values below
  /// 2^56, i.e. all ids/channels/counts/deltas in practice).  Longer
  /// varints, buffer tails and big-endian hosts take varint_reference(),
  /// which stays the byte-at-a-time oracle (property-swept against the
  /// fast path in test_byteio.cpp, the crc16_ccitt_update_reference idiom).
  std::uint64_t varint();
  /// The reference byte-at-a-time decoder: bit-identical results, errors
  /// and final position to varint() on every input.
  std::uint64_t varint_reference();
  std::int64_t svarint() { return zigzag_decode(varint()); }
  /// Borrow `size` bytes (no copy); the view aliases the underlying span.
  const std::uint8_t* raw(std::size_t size);
  /// Inverse of ByteWriter::str.
  std::string_view str();
  void skip(std::size_t n);

  std::size_t position() const { return pos_; }
  std::size_t remaining() const { return size_ - pos_; }

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

/// Buffered sequential file writer that maintains a running CRC-16/CCITT
/// over every byte written. The dataset saver streams carrier blocks
/// through it and appends crc16() as the file trailer.
class BufferedFileWriter {
 public:
  /// Throws std::runtime_error if the file cannot be opened.
  explicit BufferedFileWriter(const std::string& path,
                              std::size_t buffer_size = 256 * 1024);
  ~BufferedFileWriter();
  BufferedFileWriter(const BufferedFileWriter&) = delete;
  BufferedFileWriter& operator=(const BufferedFileWriter&) = delete;

  void write(const void* data, std::size_t size);
  /// CRC-16/CCITT of everything written so far.
  std::uint16_t crc16() const;
  /// Total bytes accepted by write() — the current file offset once
  /// flushed.  The shard writer records block offsets from this.
  std::uint64_t bytes_written() const { return bytes_written_; }
  /// Flush buffered bytes to the OS; throws on write failure.
  void flush();

 private:
  std::FILE* file_;
  std::string path_;
  std::vector<std::uint8_t> buffer_;
  std::size_t fill_ = 0;
  std::uint64_t bytes_written_ = 0;
  std::uint16_t crc_state_;
};

/// Buffered sequential file reader.
class BufferedFileReader {
 public:
  /// Throws std::runtime_error if the file cannot be opened.
  explicit BufferedFileReader(const std::string& path,
                              std::size_t buffer_size = 256 * 1024);
  ~BufferedFileReader();
  BufferedFileReader(const BufferedFileReader&) = delete;
  BufferedFileReader& operator=(const BufferedFileReader&) = delete;

  /// Read up to `size` bytes; returns the number actually read (short only
  /// at end of file).
  std::size_t read(void* out, std::size_t size);

 private:
  std::FILE* file_;
  std::vector<std::uint8_t> buffer_;
};

/// Slurp a whole file. Returns false if the file cannot be opened/read.
bool read_file_bytes(const std::string& path, std::vector<std::uint8_t>& out);
bool read_file_text(const std::string& path, std::string& out);

}  // namespace mmlab
