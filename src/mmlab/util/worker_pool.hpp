// Fixed-size worker pool: N threads draining one FIFO work queue.
//
// Every parallel stage in the repo is embarrassingly parallel across
// independent shards — diag logs for the extraction pipeline
// (MobileInsight's offline replayer has the same shape), carriers for the
// crawl engine, drives for the D1 campaigns, span partitions for the
// columnar queries — so all we need is the smallest possible pool:
// submit() enqueues a job, wait_idle() blocks until the queue is drained
// and every worker is resting.  No futures, no work stealing, no external
// dependencies — determinism comes from the callers writing into
// pre-allocated per-job slots, never from scheduling.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace mmlab {

class WorkerPool {
 public:
  /// Spawns `threads` workers; 0 means std::thread::hardware_concurrency()
  /// (itself clamped to at least 1).
  explicit WorkerPool(unsigned threads = 0);
  /// Drains the queue, then joins all workers.  If a job failed and
  /// wait_idle() was never called afterwards, the stored exception is
  /// logged to stderr (a destructor cannot rethrow it) so failures never
  /// vanish silently.
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Enqueue one job. Thread-safe; may be called from jobs themselves.
  /// Throws std::runtime_error once shutdown has begun (see shutdown()):
  /// a job accepted then would never run, so the pool refuses it loudly
  /// instead of dropping it on the floor.
  void submit(std::function<void()> job);

  /// Drain the queue, join every worker, and permanently stop the pool.
  /// Idempotent, and what the destructor runs first.  Jobs submitting
  /// further jobs *during* the drain are safe — shutdown only flips to
  /// rejecting once the queue is empty and no job is in flight; after that
  /// point submit() throws.  wait_idle() remains callable (and trivially
  /// returns) after shutdown.
  void shutdown();

  /// Block until the queue is empty and no job is running.  If any job threw,
  /// rethrows the first captured exception (remaining jobs still ran).
  void wait_idle();

  unsigned thread_count() const { return static_cast<unsigned>(threads_.size()); }

  /// The pool size `threads == 0` resolves to on this machine.
  static unsigned default_thread_count();

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> queue_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
  std::exception_ptr first_error_;
  std::vector<std::thread> threads_;
};

/// Run fn(0..n-1) across a temporary pool of `threads` workers and wait.
/// `fn` must be safe to call concurrently for distinct indices.
void parallel_for_index(unsigned threads, std::size_t n,
                        const std::function<void(std::size_t)>& fn);

}  // namespace mmlab
