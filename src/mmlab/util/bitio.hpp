// Bit-granular serialization, MSB-first, as used by the RRC codec.
//
// 3GPP RRC messages are ASN.1 UPER encoded: fields occupy the minimum number
// of bits for their constrained range and are packed back to back with no
// byte alignment.  BitWriter/BitReader provide exactly that primitive; the
// codec layers field semantics (offsets, step sizes) on top.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <vector>

namespace mmlab {

/// Error thrown when a read runs past the end of the buffer.
class BitUnderflow : public std::runtime_error {
 public:
  BitUnderflow() : std::runtime_error("bit buffer underflow") {}
};

class BitWriter {
 public:
  /// Append the low `width` bits of `value`, MSB first. width in [0, 64].
  void write(std::uint64_t value, unsigned width);

  /// Append a single bit.
  void write_bit(bool bit) { write(bit ? 1 : 0, 1); }

  /// Append a signed value stored as offset-binary over `width` bits with
  /// the given minimum, i.e. encodes (value - min).
  void write_ranged(std::int64_t value, std::int64_t min, unsigned width);

  /// Pad with zero bits to the next byte boundary.
  void align();

  std::size_t bit_size() const { return bit_size_; }
  /// Final byte buffer; trailing partial byte is zero-padded.
  const std::vector<std::uint8_t>& bytes() const { return bytes_; }
  std::vector<std::uint8_t> take() && { return std::move(bytes_); }

 private:
  std::vector<std::uint8_t> bytes_;
  std::size_t bit_size_ = 0;
};

class BitReader {
 public:
  BitReader(const std::uint8_t* data, std::size_t size_bytes)
      : data_(data), size_bits_(size_bytes * 8) {}
  explicit BitReader(const std::vector<std::uint8_t>& buf)
      : BitReader(buf.data(), buf.size()) {}

  /// Read `width` bits MSB-first. Throws BitUnderflow past the end (the
  /// position is unchanged on throw).  Batched: whenever 8 bytes remain at
  /// the cursor, the field is extracted from one 64-bit big-endian load
  /// (plus at most one spill byte for fields straddling past bit 64)
  /// instead of a bit-at-a-time loop — the RRC decode hot path.
  std::uint64_t read(unsigned width);

  /// The original bit-at-a-time loop, kept as the property-test oracle for
  /// the batched fast path (tests/test_bitio.cpp sweeps both across widths,
  /// offsets and buffer tails, mirroring the SWAR varint oracle in
  /// byteio.hpp).  Identical contract to read().
  std::uint64_t read_reference(unsigned width);

  bool read_bit() { return read(1) != 0; }

  /// Inverse of BitWriter::write_ranged.
  std::int64_t read_ranged(std::int64_t min, unsigned width) {
    return min + static_cast<std::int64_t>(read(width));
  }

  /// Skip to the next byte boundary.
  void align();

  std::size_t remaining_bits() const { return size_bits_ - pos_; }
  std::size_t position_bits() const { return pos_; }

 private:
  const std::uint8_t* data_;
  std::size_t size_bits_;
  std::size_t pos_ = 0;
};

}  // namespace mmlab
