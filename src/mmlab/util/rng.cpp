#include "mmlab/util/rng.hpp"

#include <cmath>
#include <stdexcept>

namespace mmlab {

std::size_t Rng::weighted(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    if (w < 0.0) throw std::invalid_argument("Rng::weighted: negative weight");
    total += w;
  }
  if (total <= 0.0) throw std::invalid_argument("Rng::weighted: zero total");
  double r = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r < 0.0) return i;
  }
  return weights.size() - 1;  // floating-point tail
}

}  // namespace mmlab
