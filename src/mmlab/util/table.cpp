#include "mmlab/util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace mmlab {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size())
    throw std::invalid_argument("TablePrinter: row arity mismatch");
  rows_.push_back(std::move(cells));
}

void TablePrinter::print() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) widths[c] = std::max(widths[c], row[c].size());
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c)
      std::printf("%s%-*s", c ? "  " : "", static_cast<int>(widths[c]),
                  row[c].c_str());
    std::printf("\n");
  };
  print_row(headers_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  for (std::size_t i = 0; i + 2 < total; ++i) std::printf("-");
  std::printf("\n");
  for (const auto& row : rows_) print_row(row);
}

namespace {
std::string csv_escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char ch : s) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}
}  // namespace

void TablePrinter::write_csv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("TablePrinter: cannot open " + path);
  auto write_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c)
      out << (c ? "," : "") << csv_escape(row[c]);
    out << '\n';
  };
  write_row(headers_);
  for (const auto& row : rows_) write_row(row);
}

std::string fmt_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string fmt_percent(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
  return buf;
}

}  // namespace mmlab
