#include "mmlab/util/crc.hpp"

#include <array>

namespace mmlab {
namespace {

constexpr std::array<std::uint16_t, 256> make_table() {
  std::array<std::uint16_t, 256> table{};
  for (std::uint16_t i = 0; i < 256; ++i) {
    std::uint16_t crc = i;
    for (int bit = 0; bit < 8; ++bit)
      crc = (crc & 1u) ? static_cast<std::uint16_t>((crc >> 1) ^ 0x8408)
                       : static_cast<std::uint16_t>(crc >> 1);
    table[i] = crc;
  }
  return table;
}

constexpr auto kTable = make_table();

}  // namespace

std::uint16_t crc16_ccitt_update(std::uint16_t state, const std::uint8_t* data,
                                 std::size_t size) {
  for (std::size_t i = 0; i < size; ++i)
    state = static_cast<std::uint16_t>((state >> 8) ^
                                       kTable[(state ^ data[i]) & 0xFF]);
  return state;
}

std::uint16_t crc16_ccitt(const std::uint8_t* data, std::size_t size) {
  return crc16_ccitt_finalize(crc16_ccitt_update(kCrc16CcittInit, data, size));
}

}  // namespace mmlab
