#include "mmlab/util/crc.hpp"

#include <array>

namespace mmlab {
namespace {

// kTables[0] is the classic one-byte table; kTables[k][i] is the state
// reached by pushing k further zero bytes through kTables[k-1][i].  Because
// the CRC update is GF(2)-linear, eight bytes then fold in one round:
//
//   s' = T7[(s ^ b0) & 0xFF] ^ T6[((s >> 8) ^ b1) & 0xFF]
//      ^ T5[b2] ^ T4[b3] ^ T3[b4] ^ T2[b5] ^ T1[b6] ^ T0[b7]
//
// (the 16-bit state only overlaps the first two bytes; b2..b7 enter with
// zero state so their table lookups need no state mixing).  Shard
// checksumming in the out-of-core store pushes hundreds of MB through this,
// hence slice-by-8 rather than slice-by-4 (ROADMAP item 5); the bytewise
// reference below stays as the property-test oracle.
constexpr std::size_t kSlice = 8;

constexpr std::array<std::array<std::uint16_t, 256>, kSlice> make_tables() {
  std::array<std::array<std::uint16_t, 256>, kSlice> t{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint16_t crc = static_cast<std::uint16_t>(i);
    for (int bit = 0; bit < 8; ++bit)
      crc = (crc & 1u) ? static_cast<std::uint16_t>((crc >> 1) ^ 0x8408)
                       : static_cast<std::uint16_t>(crc >> 1);
    t[0][i] = crc;
  }
  for (std::size_t k = 1; k < kSlice; ++k)
    for (std::uint32_t i = 0; i < 256; ++i)
      t[k][i] = static_cast<std::uint16_t>((t[k - 1][i] >> 8) ^
                                           t[0][t[k - 1][i] & 0xFF]);
  return t;
}

constexpr auto kTables = make_tables();

}  // namespace

std::uint16_t crc16_ccitt_update_reference(std::uint16_t state,
                                           const std::uint8_t* data,
                                           std::size_t size) {
  for (std::size_t i = 0; i < size; ++i)
    state = static_cast<std::uint16_t>((state >> 8) ^
                                       kTables[0][(state ^ data[i]) & 0xFF]);
  return state;
}

std::uint16_t crc16_ccitt_update(std::uint16_t state, const std::uint8_t* data,
                                 std::size_t size) {
  while (size >= 8) {
    state = static_cast<std::uint16_t>(
        kTables[7][(state ^ data[0]) & 0xFF] ^
        kTables[6][((state >> 8) ^ data[1]) & 0xFF] ^ kTables[5][data[2]] ^
        kTables[4][data[3]] ^ kTables[3][data[4]] ^ kTables[2][data[5]] ^
        kTables[1][data[6]] ^ kTables[0][data[7]]);
    data += 8;
    size -= 8;
  }
  return crc16_ccitt_update_reference(state, data, size);
}

std::uint16_t crc16_ccitt(const std::uint8_t* data, std::size_t size) {
  return crc16_ccitt_finalize(crc16_ccitt_update(kCrc16CcittInit, data, size));
}

}  // namespace mmlab
