#include "mmlab/util/worker_pool.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace mmlab {

unsigned WorkerPool::default_thread_count() {
  return std::max(1u, std::thread::hardware_concurrency());
}

WorkerPool::WorkerPool(unsigned threads) {
  if (threads == 0) threads = default_thread_count();
  threads_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i)
    threads_.emplace_back([this] { worker_loop(); });
}

void WorkerPool::shutdown() {
  {
    std::unique_lock lock(mutex_);
    idle_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
    stop_ = true;
  }
  work_ready_.notify_all();
  for (auto& t : threads_) t.join();
  threads_.clear();  // makes a second shutdown() a no-op
}

WorkerPool::~WorkerPool() {
  shutdown();
  // A destructor must not throw, but a job failure must not vanish either:
  // if the owner never called wait_idle() after the failing job, surface the
  // stored exception on stderr instead of silently dropping it.
  if (first_error_) {
    try {
      std::rethrow_exception(first_error_);
    } catch (const std::exception& e) {
      std::fprintf(stderr,
                   "WorkerPool: destroyed with an unobserved job failure "
                   "(call wait_idle() to rethrow it): %s\n",
                   e.what());
    } catch (...) {
      std::fprintf(stderr,
                   "WorkerPool: destroyed with an unobserved non-standard "
                   "job exception (call wait_idle() to rethrow it)\n");
    }
  }
}

void WorkerPool::submit(std::function<void()> job) {
  {
    std::lock_guard lock(mutex_);
    if (stop_)
      throw std::runtime_error(
          "WorkerPool: submit after shutdown (the job would never run)");
    queue_.push_back(std::move(job));
  }
  work_ready_.notify_one();
}

void WorkerPool::wait_idle() {
  std::unique_lock lock(mutex_);
  idle_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
  if (first_error_) {
    std::exception_ptr err = first_error_;
    first_error_ = nullptr;
    lock.unlock();
    std::rethrow_exception(err);
  }
}

void WorkerPool::worker_loop() {
  std::unique_lock lock(mutex_);
  for (;;) {
    work_ready_.wait(lock, [this] { return stop_ || !queue_.empty(); });
    if (queue_.empty()) return;  // stop_ set and nothing left to do
    std::function<void()> job = std::move(queue_.front());
    queue_.pop_front();
    ++in_flight_;
    lock.unlock();
    try {
      job();
    } catch (...) {
      std::lock_guard relock(mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    lock.lock();
    --in_flight_;
    if (queue_.empty() && in_flight_ == 0) idle_.notify_all();
  }
}

void parallel_for_index(unsigned threads, std::size_t n,
                        const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (threads == 0) threads = WorkerPool::default_thread_count();
  if (threads == 1 || n == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  WorkerPool pool(std::min<std::size_t>(threads, n));
  for (std::size_t i = 0; i < n; ++i)
    pool.submit([&fn, i] { fn(i); });
  pool.wait_idle();
}

}  // namespace mmlab
