// Strong types for radio-engineering units.
//
// Cellular configuration work mixes three kinds of decibel quantities that
// must never be silently confused:
//   * Dbm  — absolute power referenced to 1 mW (e.g. RSRP, -140..-44 dBm),
//   * Db   — a ratio / offset (e.g. hysteresis, A3 offset, RSRQ),
//   * plain doubles — linear mW used internally by the channel model.
// The types below make the legal algebra explicit: Dbm - Dbm = Db,
// Dbm + Db = Dbm, Db + Db = Db; adding two Dbm values does not compile.
#pragma once

#include <cmath>
#include <compare>
#include <string>

namespace mmlab {

/// A decibel *ratio or offset* (relative quantity).
class Db {
 public:
  constexpr Db() = default;
  constexpr explicit Db(double value) : value_(value) {}

  constexpr double value() const { return value_; }
  /// Linear power ratio: 10^(dB/10).
  double linear() const { return std::pow(10.0, value_ / 10.0); }

  constexpr Db operator+(Db o) const { return Db{value_ + o.value_}; }
  constexpr Db operator-(Db o) const { return Db{value_ - o.value_}; }
  constexpr Db operator-() const { return Db{-value_}; }
  constexpr Db operator*(double k) const { return Db{value_ * k}; }
  constexpr Db& operator+=(Db o) { value_ += o.value_; return *this; }
  constexpr Db& operator-=(Db o) { value_ -= o.value_; return *this; }
  constexpr auto operator<=>(const Db&) const = default;

 private:
  double value_ = 0.0;
};

/// An absolute power level in dBm.
class Dbm {
 public:
  constexpr Dbm() = default;
  constexpr explicit Dbm(double value) : value_(value) {}

  /// Construct from linear milliwatts. `mw` must be > 0.
  static Dbm from_milliwatts(double mw) { return Dbm{10.0 * std::log10(mw)}; }

  constexpr double value() const { return value_; }
  double milliwatts() const { return std::pow(10.0, value_ / 10.0); }

  constexpr Dbm operator+(Db o) const { return Dbm{value_ + o.value()}; }
  constexpr Dbm operator-(Db o) const { return Dbm{value_ - o.value()}; }
  constexpr Db operator-(Dbm o) const { return Db{value_ - o.value_}; }
  constexpr Dbm& operator+=(Db o) { value_ += o.value(); return *this; }
  constexpr Dbm& operator-=(Db o) { value_ -= o.value(); return *this; }
  constexpr auto operator<=>(const Dbm&) const = default;

 private:
  double value_ = 0.0;
};

constexpr Db operator"" _dB(long double v) { return Db{static_cast<double>(v)}; }
constexpr Db operator"" _dB(unsigned long long v) { return Db{static_cast<double>(v)}; }
constexpr Dbm operator"" _dBm(long double v) { return Dbm{static_cast<double>(v)}; }
constexpr Dbm operator"" _dBm(unsigned long long v) { return Dbm{static_cast<double>(v)}; }

std::string to_string(Db v);
std::string to_string(Dbm v);

/// RSRP validity range defined by 3GPP TS 36.133 §9.1.4.
constexpr Dbm kMinRsrp{-140.0};
constexpr Dbm kMaxRsrp{-44.0};
/// RSRQ validity range defined by 3GPP TS 36.133 §9.1.7.
constexpr Db kMinRsrq{-19.5};
constexpr Db kMaxRsrq{-3.0};

/// Clamp a measured RSRP into its reportable range.
constexpr Dbm clamp_rsrp(Dbm v) {
  return v < kMinRsrp ? kMinRsrp : (v > kMaxRsrp ? kMaxRsrp : v);
}
constexpr Db clamp_rsrq(Db v) {
  return v < kMinRsrq ? kMinRsrq : (v > kMaxRsrq ? kMaxRsrq : v);
}

}  // namespace mmlab
