#include "mmlab/util/units.hpp"

#include <cstdio>

namespace mmlab {

std::string to_string(Db v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1fdB", v.value());
  return buf;
}

std::string to_string(Dbm v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1fdBm", v.value());
  return buf;
}

}  // namespace mmlab
