#include "mmlab/util/byteio.hpp"

#include <bit>
#include <cstring>

#include "mmlab/util/crc.hpp"

namespace mmlab {

// --- ByteWriter --------------------------------------------------------------

void ByteWriter::u16le(std::uint16_t v) {
  bytes_.push_back(static_cast<std::uint8_t>(v & 0xFF));
  bytes_.push_back(static_cast<std::uint8_t>(v >> 8));
}

void ByteWriter::f64le(double v) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  for (int i = 0; i < 8; ++i)
    bytes_.push_back(static_cast<std::uint8_t>(bits >> (8 * i)));
}

void ByteWriter::varint(std::uint64_t v) {
  while (v >= 0x80) {
    bytes_.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  bytes_.push_back(static_cast<std::uint8_t>(v));
}

void ByteWriter::raw(const void* data, std::size_t size) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  bytes_.insert(bytes_.end(), p, p + size);
}

void ByteWriter::str(std::string_view s) {
  varint(s.size());
  raw(s.data(), s.size());
}

// --- ByteReader --------------------------------------------------------------

std::uint8_t ByteReader::u8() {
  if (pos_ >= size_) throw ByteUnderflow();
  return data_[pos_++];
}

std::uint16_t ByteReader::u16le() {
  if (size_ - pos_ < 2) throw ByteUnderflow();
  const std::uint16_t v = static_cast<std::uint16_t>(
      data_[pos_] | (static_cast<std::uint16_t>(data_[pos_ + 1]) << 8));
  pos_ += 2;
  return v;
}

double ByteReader::f64le() {
  if (size_ - pos_ < 8) throw ByteUnderflow();
  std::uint64_t bits;
  if constexpr (std::endian::native == std::endian::little) {
    std::memcpy(&bits, data_ + pos_, 8);
  } else {
    bits = 0;
    for (int i = 0; i < 8; ++i)
      bits |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
  }
  pos_ += 8;
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::uint64_t ByteReader::varint() {
  // SWAR fast path (see the header contract): with a full 10-byte window
  // available no truncation is possible within the first 8 encoded bytes,
  // so one unaligned word load replaces up to 8 bounds-checked byte loads.
  // The continuation scan is branch-free: a clear high bit in byte i shows
  // up as a set bit in z at position 8i+7, and countr_zero finds the first.
  if constexpr (std::endian::native == std::endian::little) {
    if (size_ - pos_ >= 10) {
      std::uint64_t w;
      std::memcpy(&w, data_ + pos_, 8);
      const std::uint64_t z = ~w & 0x8080808080808080ull;
      if (z != 0) {
        const unsigned len = static_cast<unsigned>(std::countr_zero(z)) / 8 + 1;
        if (len < 8) w &= (std::uint64_t{1} << (8 * len)) - 1;
        w &= 0x7F7F7F7F7F7F7F7Full;
        // Fold the 7-bit payload groups together (8 bytes -> 56 bits).
        w = ((w & 0x7F007F007F007F00ull) >> 1) | (w & 0x007F007F007F007Full);
        w = ((w & 0x3FFF00003FFF0000ull) >> 2) | (w & 0x00003FFF00003FFFull);
        w = ((w & 0x0FFFFFFF00000000ull) >> 4) | (w & 0x000000000FFFFFFFull);
        pos_ += len;
        return w;
      }
      // 9- and 10-byte varints (values >= 2^56) are rare enough that the
      // reference loop — which also owns the over-long rejection — takes
      // them.
    }
  }
  return varint_reference();
}

std::uint64_t ByteReader::varint_reference() {
  std::uint64_t v = 0;
  for (unsigned shift = 0; shift < 70; shift += 7) {
    if (pos_ >= size_) throw ByteUnderflow("truncated varint");
    const std::uint8_t byte = data_[pos_++];
    if (shift == 63 && (byte & ~std::uint8_t{1}))
      throw ByteUnderflow("over-long varint");
    v |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
    if (!(byte & 0x80)) return v;
  }
  throw ByteUnderflow("over-long varint");
}

const std::uint8_t* ByteReader::raw(std::size_t size) {
  if (size_ - pos_ < size) throw ByteUnderflow();
  const std::uint8_t* p = data_ + pos_;
  pos_ += size;
  return p;
}

std::string_view ByteReader::str() {
  const std::uint64_t n = varint();
  if (n > remaining()) throw ByteUnderflow("truncated string");
  const auto* p = raw(static_cast<std::size_t>(n));
  return {reinterpret_cast<const char*>(p), static_cast<std::size_t>(n)};
}

void ByteReader::skip(std::size_t n) {
  if (size_ - pos_ < n) throw ByteUnderflow();
  pos_ += n;
}

// --- BufferedFileWriter ------------------------------------------------------

BufferedFileWriter::BufferedFileWriter(const std::string& path,
                                       std::size_t buffer_size)
    : file_(std::fopen(path.c_str(), "wb")),
      path_(path),
      buffer_(buffer_size),
      crc_state_(kCrc16CcittInit) {
  if (!file_)
    throw std::runtime_error("BufferedFileWriter: cannot open " + path);
}

BufferedFileWriter::~BufferedFileWriter() {
  if (!file_) return;
  // Best effort: flush() throws on failure, the destructor must not.
  if (fill_ > 0) std::fwrite(buffer_.data(), 1, fill_, file_);
  std::fclose(file_);
}

void BufferedFileWriter::write(const void* data, std::size_t size) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  crc_state_ = crc16_ccitt_update(crc_state_, p, size);
  bytes_written_ += size;
  while (size > 0) {
    if (fill_ == buffer_.size()) flush();
    const std::size_t n = std::min(size, buffer_.size() - fill_);
    std::memcpy(buffer_.data() + fill_, p, n);
    fill_ += n;
    p += n;
    size -= n;
  }
}

std::uint16_t BufferedFileWriter::crc16() const {
  return crc16_ccitt_finalize(crc_state_);
}

void BufferedFileWriter::flush() {
  if (fill_ > 0 && std::fwrite(buffer_.data(), 1, fill_, file_) != fill_)
    throw std::runtime_error("BufferedFileWriter: write failed: " + path_);
  fill_ = 0;
}

// --- BufferedFileReader ------------------------------------------------------

BufferedFileReader::BufferedFileReader(const std::string& path,
                                       std::size_t buffer_size)
    : file_(std::fopen(path.c_str(), "rb")), buffer_(buffer_size) {
  if (!file_)
    throw std::runtime_error("BufferedFileReader: cannot open " + path);
  std::setvbuf(file_, reinterpret_cast<char*>(buffer_.data()), _IOFBF,
               buffer_.size());
}

BufferedFileReader::~BufferedFileReader() {
  if (file_) std::fclose(file_);
}

std::size_t BufferedFileReader::read(void* out, std::size_t size) {
  return std::fread(out, 1, size, file_);
}

// --- whole-file helpers ------------------------------------------------------

namespace {

template <typename Container>
bool read_file_into(const std::string& path, Container& out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) return false;
  out.clear();
  if (std::fseek(f, 0, SEEK_END) == 0) {
    const long size = std::ftell(f);
    if (size > 0) out.reserve(static_cast<std::size_t>(size));
    std::fseek(f, 0, SEEK_SET);
  }
  char chunk[64 * 1024];
  std::size_t n;
  while ((n = std::fread(chunk, 1, sizeof(chunk), f)) > 0)
    out.insert(out.end(), chunk, chunk + n);
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  return ok;
}

}  // namespace

bool read_file_bytes(const std::string& path, std::vector<std::uint8_t>& out) {
  return read_file_into(path, out);
}

bool read_file_text(const std::string& path, std::string& out) {
  return read_file_into(path, out);
}

}  // namespace mmlab
