// Plain-text table and CSV emission for the bench harness.
//
// Every fig*/tab* bench prints a human-readable table to stdout (the rows or
// series the paper reports) and can mirror the same rows into a CSV file for
// plotting.  TablePrinter right-aligns numeric columns and pads headers.
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace mmlab {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  /// Add one row; must have the same arity as the header row.
  void add_row(std::vector<std::string> cells);

  /// Render to stdout with a separator under the header.
  void print() const;

  /// Write as CSV (headers + rows). Throws std::runtime_error on I/O failure.
  void write_csv(const std::string& path) const;

  std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// printf-style helpers for table cells.
std::string fmt_double(double v, int precision = 2);
std::string fmt_percent(double fraction, int precision = 1);

}  // namespace mmlab
