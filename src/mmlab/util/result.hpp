// Minimal expected-like result type for recoverable parse errors.
//
// The diag/RRC decode path must tolerate malformed input (a real diag stream
// has truncation and bit errors); exceptions are reserved for programmer
// errors.  Result<T> carries either a value or an error string.
#pragma once

#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

namespace mmlab {

template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  static Result error(std::string message) {
    Result r;
    r.error_ = std::move(message);
    return r;
  }

  bool ok() const { return value_.has_value(); }
  explicit operator bool() const { return ok(); }

  const T& value() const& {
    if (!ok()) throw std::logic_error("Result::value on error: " + error_);
    return *value_;
  }
  T& value() & {
    if (!ok()) throw std::logic_error("Result::value on error: " + error_);
    return *value_;
  }
  T&& take() && {
    if (!ok()) throw std::logic_error("Result::take on error: " + error_);
    return std::move(*value_);
  }
  const std::string& error_message() const { return error_; }

 private:
  Result() = default;
  std::optional<T> value_;
  std::string error_;
};

}  // namespace mmlab
