// Simulation time.
//
// All timestamps in the simulator and in diag logs are SimTime: integer
// milliseconds since the simulation epoch.  Durations are plain Millis.
// Integer milliseconds are exact, totally ordered, and sufficient for the
// finest timer in the model (the 40 ms time-to-trigger step).
#pragma once

#include <cstdint>
#include <compare>

namespace mmlab {

using Millis = std::int64_t;

struct SimTime {
  Millis ms = 0;

  constexpr auto operator<=>(const SimTime&) const = default;
  constexpr SimTime operator+(Millis d) const { return SimTime{ms + d}; }
  constexpr SimTime operator-(Millis d) const { return SimTime{ms - d}; }
  constexpr Millis operator-(SimTime o) const { return ms - o.ms; }
  constexpr SimTime& operator+=(Millis d) { ms += d; return *this; }

  constexpr double seconds() const { return static_cast<double>(ms) / 1e3; }
  constexpr double days() const { return static_cast<double>(ms) / 86'400'000.0; }

  static constexpr SimTime from_seconds(double s) {
    return SimTime{static_cast<Millis>(s * 1e3)};
  }
  static constexpr SimTime from_days(double d) {
    return SimTime{static_cast<Millis>(d * 86'400'000.0)};
  }
};

constexpr Millis kMillisPerSecond = 1'000;
constexpr Millis kMillisPerMinute = 60'000;
constexpr Millis kMillisPerHour = 3'600'000;
constexpr Millis kMillisPerDay = 86'400'000;

}  // namespace mmlab
