// CRC-16/CCITT (X.25 variant) — the checksum used by the Qualcomm diag
// protocol our diag-log framing emulates: polynomial 0x1021 reflected
// (0x8408), initial value 0xFFFF, final XOR 0xFFFF.
#pragma once

#include <cstdint>
#include <cstddef>

namespace mmlab {

std::uint16_t crc16_ccitt(const std::uint8_t* data, std::size_t size);

}  // namespace mmlab
