// CRC-16/CCITT (X.25 variant) — the checksum used by the Qualcomm diag
// protocol our diag-log framing emulates: polynomial 0x1021 reflected
// (0x8408), initial value 0xFFFF, final XOR 0xFFFF.
#pragma once

#include <cstdint>
#include <cstddef>

namespace mmlab {

std::uint16_t crc16_ccitt(const std::uint8_t* data, std::size_t size);

// Incremental interface for streaming writers (util/byteio): thread the
// state through successive update calls, then finalize once.  Equivalent to
// crc16_ccitt over the concatenated chunks.
inline constexpr std::uint16_t kCrc16CcittInit = 0xFFFF;
std::uint16_t crc16_ccitt_update(std::uint16_t state, const std::uint8_t* data,
                                 std::size_t size);

/// The textbook byte-at-a-time update.  crc16_ccitt_update runs a
/// slice-by-8 variant (8 bytes per table round); this one is kept as the
/// test oracle the fast path is property-checked against.
std::uint16_t crc16_ccitt_update_reference(std::uint16_t state,
                                           const std::uint8_t* data,
                                           std::size_t size);
constexpr std::uint16_t crc16_ccitt_finalize(std::uint16_t state) {
  return static_cast<std::uint16_t>(state ^ 0xFFFF);
}

}  // namespace mmlab
