#include "mmlab/util/bitio.hpp"

namespace mmlab {

void BitWriter::write(std::uint64_t value, unsigned width) {
  if (width > 64) throw std::invalid_argument("BitWriter: width > 64");
  if (width < 64) value &= (1ULL << width) - 1;
  for (unsigned i = width; i-- > 0;) {
    const bool bit = (value >> i) & 1ULL;
    const std::size_t byte = bit_size_ / 8;
    const unsigned offset = 7 - static_cast<unsigned>(bit_size_ % 8);
    if (byte == bytes_.size()) bytes_.push_back(0);
    if (bit) bytes_[byte] |= static_cast<std::uint8_t>(1u << offset);
    ++bit_size_;
  }
}

void BitWriter::write_ranged(std::int64_t value, std::int64_t min,
                             unsigned width) {
  if (value < min) throw std::invalid_argument("BitWriter: value below min");
  const auto delta = static_cast<std::uint64_t>(value - min);
  if (width < 64 && delta >= (1ULL << width))
    throw std::invalid_argument("BitWriter: value exceeds field range");
  write(delta, width);
}

void BitWriter::align() {
  while (bit_size_ % 8 != 0) write_bit(false);
}

std::uint64_t BitReader::read(unsigned width) {
  if (width > 64) throw std::invalid_argument("BitReader: width > 64");
  if (pos_ + width > size_bits_) throw BitUnderflow{};
  std::uint64_t value = 0;
  for (unsigned i = 0; i < width; ++i) {
    const std::size_t byte = pos_ / 8;
    const unsigned offset = 7 - static_cast<unsigned>(pos_ % 8);
    value = (value << 1) | ((data_[byte] >> offset) & 1u);
    ++pos_;
  }
  return value;
}

void BitReader::align() {
  while (pos_ % 8 != 0 && pos_ < size_bits_) ++pos_;
}

}  // namespace mmlab
