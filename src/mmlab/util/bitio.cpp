#include "mmlab/util/bitio.hpp"

namespace mmlab {

void BitWriter::write(std::uint64_t value, unsigned width) {
  if (width > 64) throw std::invalid_argument("BitWriter: width > 64");
  if (width < 64) value &= (1ULL << width) - 1;
  for (unsigned i = width; i-- > 0;) {
    const bool bit = (value >> i) & 1ULL;
    const std::size_t byte = bit_size_ / 8;
    const unsigned offset = 7 - static_cast<unsigned>(bit_size_ % 8);
    if (byte == bytes_.size()) bytes_.push_back(0);
    if (bit) bytes_[byte] |= static_cast<std::uint8_t>(1u << offset);
    ++bit_size_;
  }
}

void BitWriter::write_ranged(std::int64_t value, std::int64_t min,
                             unsigned width) {
  if (value < min) throw std::invalid_argument("BitWriter: value below min");
  const auto delta = static_cast<std::uint64_t>(value - min);
  if (width < 64 && delta >= (1ULL << width))
    throw std::invalid_argument("BitWriter: value exceeds field range");
  write(delta, width);
}

void BitWriter::align() {
  while (bit_size_ % 8 != 0) write_bit(false);
}

std::uint64_t BitReader::read(unsigned width) {
  if (width > 64) throw std::invalid_argument("BitReader: width > 64");
  if (pos_ + width > size_bits_) throw BitUnderflow{};
  if (width == 0) return 0;
  const std::size_t byte = pos_ / 8;
  const unsigned bit = static_cast<unsigned>(pos_ % 8);
  // Fast path: with 8 whole bytes at the cursor, any field of <= 64 - bit
  // bits falls inside one big-endian 64-bit load; wider fields (bit > 0)
  // spill at most 7 bits into the following byte, which the underflow
  // check above already proved in bounds (bit + width > 64 forces
  // byte + 8 < size_bits_ / 8).  The byte-wise assembly compiles to a
  // single load + bswap; unaligned access stays portable.
  if (byte + 8 <= size_bits_ / 8) {
    std::uint64_t w = 0;
    for (unsigned i = 0; i < 8; ++i) w = (w << 8) | data_[byte + i];
    pos_ += width;
    if (bit + width <= 64) {
      const std::uint64_t mask =
          width == 64 ? ~0ULL : (1ULL << width) - 1;
      return (w >> (64 - bit - width)) & mask;
    }
    const unsigned rem = bit + width - 64;  // in [1, 7]
    const std::uint64_t head = w & ((1ULL << (64 - bit)) - 1);
    return (head << rem) | (data_[byte + 8] >> (8 - rem));
  }
  // Tail (< 8 bytes left): the reference bit loop, bounded by 56 bits.
  return read_reference(width);
}

std::uint64_t BitReader::read_reference(unsigned width) {
  if (width > 64) throw std::invalid_argument("BitReader: width > 64");
  if (pos_ + width > size_bits_) throw BitUnderflow{};
  std::uint64_t value = 0;
  for (unsigned i = 0; i < width; ++i) {
    const std::size_t byte = pos_ / 8;
    const unsigned offset = 7 - static_cast<unsigned>(pos_ % 8);
    value = (value << 1) | ((data_[byte] >> offset) & 1u);
    ++pos_;
  }
  return value;
}

void BitReader::align() {
  while (pos_ % 8 != 0 && pos_ < size_bits_) ++pos_;
}

}  // namespace mmlab
