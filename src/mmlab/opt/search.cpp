#include "mmlab/opt/search.hpp"

#include <algorithm>
#include <stdexcept>

namespace mmlab::opt {

std::vector<Candidate> RandomSearch::propose(const ParamSpace& space,
                                             std::size_t budget_left,
                                             Rng& rng) {
  std::vector<Candidate> batch;
  const std::size_t n = std::min(batch_size_, budget_left);
  batch.reserve(n);
  if (first_ && n > 0) {
    batch.push_back(space.default_candidate());
    first_ = false;
  }
  while (batch.size() < n) batch.push_back(space.sample(rng));
  return batch;
}

HalvingSearch::HalvingSearch(Options options) : opts_(options) {
  if (opts_.population == 0) opts_.population = 1;
  if (opts_.survivors == 0) opts_.survivors = 1;
  if (opts_.survivors > opts_.population) opts_.survivors = opts_.population;
  if (opts_.initial_step < 1) opts_.initial_step = 1;
}

std::vector<Candidate> HalvingSearch::propose(const ParamSpace& space,
                                              std::size_t budget_left,
                                              Rng& rng) {
  std::vector<Candidate> batch;
  const std::size_t n = std::min(opts_.population, budget_left);
  batch.reserve(n);
  if (rung_ == 0 || elites_.empty()) {
    if (n > 0) batch.push_back(space.default_candidate());
    while (batch.size() < n) batch.push_back(space.sample(rng));
    return batch;
  }
  // Later rungs explore around the elites with a step that halves per rung,
  // never below one grid index.
  const int step = std::max(1, opts_.initial_step >> (rung_ - 1));
  for (std::size_t i = 0; i < n; ++i) {
    const Trial& parent = elites_[i % elites_.size()];
    batch.push_back(space.neighbor(parent.params, rng, step));
  }
  return batch;
}

void HalvingSearch::observe(const std::vector<Trial>& batch) {
  for (const auto& t : batch) elites_.push_back(t);
  // Best first; ties go to the earlier trial so the elite set — and with it
  // the whole search trajectory — is a pure function of the scores.
  std::stable_sort(elites_.begin(), elites_.end(),
                   [](const Trial& a, const Trial& b) {
                     if (a.score != b.score) return a.score > b.score;
                     return a.index < b.index;
                   });
  if (elites_.size() > opts_.survivors) elites_.resize(opts_.survivors);
  ++rung_;
}

std::unique_ptr<Strategy> make_strategy(const std::string& name) {
  if (name == "random") return std::make_unique<RandomSearch>();
  if (name == "halving") return std::make_unique<HalvingSearch>();
  throw std::invalid_argument("make_strategy: unknown strategy '" + name +
                              "' (expected random|halving)");
}

Evaluator::Evaluator(net::Deployment& network, const ParamSpace& space,
                     sim::CampaignOptions campaign, Objective objective)
    : network_(network),
      space_(space),
      campaign_(std::move(campaign)),
      objective_(objective) {
  const auto& cells = network_.cells();
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (cells[i].is_lte() && cells[i].carrier == campaign_.carrier)
      saved_.emplace_back(i, cells[i].lte_config);
  }
  if (saved_.empty())
    throw std::invalid_argument(
        "Evaluator: campaign carrier has no LTE cells to tune");
}

Evaluator::~Evaluator() { restore(); }

void Evaluator::restore() {
  for (const auto& [index, original] : saved_)
    network_.cell_at(index).lte_config = original;
}

Trial Evaluator::run_scored(std::size_t index,
                            const std::vector<geo::CityId>& cities) {
  sim::CampaignOptions campaign = campaign_;
  if (!cities.empty()) campaign.cities = cities;
  const sim::CampaignResult result = sim::run_campaign(network_, campaign);
  Trial t;
  t.index = index;
  t.metrics = compute_metrics(result, objective_.pingpong_window_ms);
  t.score = objective_.score(t.metrics);
  return t;
}

Trial Evaluator::evaluate_baseline(const std::vector<geo::CityId>& cities) {
  restore();
  return run_scored(0, cities);
}

Trial Evaluator::evaluate(const Candidate& c, std::size_t index,
                          const std::vector<geo::CityId>& cities) {
  space_.validate(c);
  // Each candidate starts from the cell's ORIGINAL config, so untuned fields
  // keep their seed heterogeneity and trials never see a predecessor's
  // leftovers.
  for (const auto& [cell_index, original] : saved_) {
    config::CellConfig cfg = original;
    space_.apply(c, cfg);
    network_.cell_at(cell_index).lte_config = cfg;
  }
  Trial t = run_scored(index, cities);
  t.params = c;
  return t;
}

OptResult optimize(net::Deployment& network, const ParamSpace& space,
                   Strategy& strategy, const sim::CampaignOptions& campaign,
                   const OptOptions& options) {
  Evaluator evaluator(network, space, campaign, options.objective);

  OptResult out;
  out.baseline = evaluator.evaluate_baseline();
  Rng rng(options.seed);
  std::size_t spent = 0;
  while (spent < options.budget) {
    std::vector<Candidate> batch =
        strategy.propose(space, options.budget - spent, rng);
    if (batch.empty()) break;
    if (batch.size() > options.budget - spent)
      batch.resize(options.budget - spent);
    std::vector<Trial> evaluated;
    evaluated.reserve(batch.size());
    for (const Candidate& c : batch) {
      Trial t = evaluator.evaluate(c, spent + evaluated.size());
      evaluated.push_back(std::move(t));
    }
    strategy.observe(evaluated);
    for (Trial& t : evaluated) out.trials.push_back(std::move(t));
    spent += evaluated.size();
  }

  for (std::size_t i = 1; i < out.trials.size(); ++i)
    if (out.trials[i].score > out.trials[out.best_index].score)
      out.best_index = i;
  evaluator.restore();
  return out;
}

TransferReport run_transfer(net::Deployment& network, const ParamSpace& space,
                            Strategy& strategy,
                            const sim::CampaignOptions& campaign_template,
                            geo::CityId tune_city,
                            const std::vector<geo::CityId>& eval_cities,
                            const OptOptions& options) {
  TransferReport report;
  report.tune_city = tune_city;

  sim::CampaignOptions tuning_campaign = campaign_template;
  tuning_campaign.cities = {tune_city};
  report.tuning =
      optimize(network, space, strategy, tuning_campaign, options);
  if (report.tuning.trials.empty())
    throw std::invalid_argument("run_transfer: optimization produced no trials"
                                " (budget 0 or strategy proposed nothing)");
  const Candidate& best = report.tuning.best().params;

  // Per-city seed-vs-tuned comparison, each city its own single-city
  // campaign with the same CRN seed the tuning ran on.
  Evaluator evaluator(network, space, tuning_campaign, options.objective);
  for (geo::CityId city : eval_cities) {
    CityEval ce;
    ce.city = city;
    ce.seed = evaluator.evaluate_baseline({city});
    ce.tuned = evaluator.evaluate(best, 0, {city});
    report.cities.push_back(std::move(ce));
  }
  evaluator.restore();
  return report;
}

}  // namespace mmlab::opt
