// The handover-parameter search space (paper §6: "configuration tuning").
//
// Benzaghta et al. (PAPERS.md) optimize exactly the knobs this repo's
// misconfiguration analyses flag: A3 offset, time-to-trigger, hysteresis,
// q-RxLevMin and the reselection priority.  A ParamSpace names those knobs
// as dimensions; each dimension's legal values are the 3GPP quantization
// grid points (config/quant) inside an operator-plausible bound, so every
// candidate the optimizer can express is a configuration a real eNB could
// broadcast.  Candidates are plain value vectors (one on-grid value per
// dimension) and apply() overwrites the corresponding fields of a
// config::CellConfig — the bridge from search space to simulated network.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "mmlab/config/cell_config.hpp"
#include "mmlab/util/rng.hpp"

namespace mmlab::opt {

/// A candidate configuration: one on-grid value per ParamSpace dimension,
/// index-aligned with ParamSpace::dims().
using Candidate = std::vector<double>;

/// One tunable knob.  TTT is carried in milliseconds as a double (its grid
/// is the TS 36.331 enum, so interpolation never happens — search moves by
/// grid index).
struct ParamDim {
  enum class Id {
    kA3OffsetDb,       ///< decisive A3 offset (0.5 dB grid)
    kTttMs,            ///< time-to-trigger of decisive events (enum grid)
    kHysteresisDb,     ///< event hysteresis (0.5 dB grid)
    kQRxLevMinDbm,     ///< serving minimum level (2 dB grid)
    kServingPriority,  ///< reselection priority of the serving layer (0..7)
    kQHystDb,          ///< reselection hysteresis Hs (enum grid)
  };

  Id id;
  std::string name;
  std::vector<double> grid;  ///< legal values, strictly ascending
};

class ParamSpace {
 public:
  /// The standard 6-knob handover space with operator-plausible bounds:
  /// A3 offset in [-2, 10] dB, TTT in [40, 5120] ms, hysteresis in [0, 5]
  /// dB, q-RxLevMin in [-130, -110] dBm, priority in [0, 7], q-Hyst in
  /// [0, 12] dB.  Every grid value round-trips through its config/quant
  /// encoder (asserted at construction).
  static ParamSpace standard();

  const std::vector<ParamDim>& dims() const { return dims_; }
  std::size_t size() const { return dims_.size(); }

  /// The 3GPP-default / seed-typical point: A3 offset 2 dB, TTT 320 ms,
  /// hysteresis 1 dB, q-RxLevMin -122 dBm, priority 4, q-Hyst 4 dB.
  Candidate default_candidate() const;

  /// Uniform independent draw from each dimension's grid.
  Candidate sample(Rng& rng) const;

  /// Perturb `base`: every dimension moves by a uniform non-zero step of at
  /// most `max_step` grid indices (clamped at the grid ends).  `max_step`
  /// < 1 is treated as 1.
  Candidate neighbor(const Candidate& base, Rng& rng, int max_step) const;

  /// Throws std::invalid_argument if the candidate has the wrong arity or
  /// any value is off-grid.
  void validate(const Candidate& c) const;

  /// Overwrite the tunable fields of `cfg` with the candidate's values:
  /// serving.{q_rxlevmin_dbm, priority, q_hyst_db}, and for every
  /// neighbour-involving report config (A3..B2, not the A2 gate and not
  /// periodic reports) the hysteresis and TTT, plus offset_db on A3/A6.
  void apply(const Candidate& c, config::CellConfig& cfg) const;

  /// "a3=2.0dB ttt=320ms hyst=1.0dB qrxlevmin=-122dBm prio=4 qhyst=4.0dB"
  std::string describe(const Candidate& c) const;

 private:
  explicit ParamSpace(std::vector<ParamDim> dims);

  /// Grid index of `value` in dimension `d` (exact match; throws otherwise).
  std::size_t index_of(std::size_t d, double value) const;

  std::vector<ParamDim> dims_;
};

}  // namespace mmlab::opt
