#include "mmlab/opt/objective.hpp"

namespace mmlab::opt {

std::size_t count_pingpongs(const std::vector<sim::HandoffPerf>& handoffs,
                            Millis window_ms) {
  std::size_t count = 0;
  for (std::size_t i = 1; i < handoffs.size(); ++i) {
    const auto& prev = handoffs[i - 1].rec;
    const auto& cur = handoffs[i].rec;
    if (cur.exec_time < prev.exec_time) continue;  // drive boundary
    if (cur.from == prev.to && cur.to == prev.from &&
        cur.exec_time - prev.exec_time <= window_ms)
      ++count;
  }
  return count;
}

CampaignMetrics compute_metrics(const sim::CampaignResult& campaign,
                                Millis pingpong_window_ms) {
  CampaignMetrics m;
  m.mean_throughput_bps = campaign.mean_throughput_bps();
  m.handoffs = campaign.handoffs.size();
  m.pingpongs = count_pingpongs(campaign.handoffs, pingpong_window_ms);
  m.radio_link_failures = campaign.radio_link_failures;
  m.handoff_failures = campaign.handoff_failures;
  m.total_km = campaign.total_km;
  return m;
}

double Objective::score(const CampaignMetrics& m) const {
  const double km = m.total_km > 0.0 ? m.total_km : 1.0;
  return w_throughput * (m.mean_throughput_bps / 1e6) -
         w_pingpong * (static_cast<double>(m.pingpongs) / km) -
         w_rlf * (static_cast<double>(m.radio_link_failures) / km) -
         w_handoff_failure * (static_cast<double>(m.handoff_failures) / km);
}

}  // namespace mmlab::opt
