// Closed-loop search driver: treat sim::run_campaign as a black-box
// objective over ParamSpace and climb it (ROADMAP item 3).
//
// The loop is batch-synchronous: a Strategy proposes a batch of on-grid
// candidates, the Evaluator writes each one into every LTE cell of the
// target carrier (in place, originals saved), runs one campaign over the
// tuning cities and scores it, and the strategy observes the finished
// trials before proposing again.  Candidates are evaluated with COMMON
// RANDOM NUMBERS — every trial reuses the same campaign seed, hence the
// same routes and UE noise streams — so score differences come from the
// configuration alone, not from route luck (the classic variance-reduction
// trick for simulation optimization).
//
// Determinism contract (pinned by OptParallel in tests/test_opt.cpp): the
// driver itself is serial — strategy RNG draws, candidate application and
// score folding happen in trial order — and the only parallel stage is
// run_campaign's drive fan-out, which is bit-identical for every thread
// count.  A whole optimization run (every trial's params, metrics and
// score, and the chosen best) is therefore bit-identical for any
// CampaignOptions::threads.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "mmlab/opt/objective.hpp"
#include "mmlab/opt/param_space.hpp"

namespace mmlab::opt {

/// One evaluated candidate.
struct Trial {
  std::size_t index = 0;  ///< evaluation order, 0-based
  Candidate params;       ///< empty for the unmodified-world baseline
  CampaignMetrics metrics;
  double score = 0.0;
};

/// A pluggable proposer.  propose() may return fewer candidates than
/// `budget_left` but never more; an empty batch ends the run early.
/// observe() receives the evaluated batch in proposal order.
class Strategy {
 public:
  virtual ~Strategy() = default;
  virtual const char* name() const = 0;
  virtual std::vector<Candidate> propose(const ParamSpace& space,
                                         std::size_t budget_left, Rng& rng) = 0;
  virtual void observe(const std::vector<Trial>& batch) = 0;
};

/// Seeded uniform random search — the baseline every model-guided strategy
/// must beat.  The first batch leads with the 3GPP-default candidate so the
/// run's best is never worse than the uniform default config.
class RandomSearch : public Strategy {
 public:
  explicit RandomSearch(std::size_t batch_size = 8)
      : batch_size_(batch_size ? batch_size : 1) {}
  const char* name() const override { return "random"; }
  std::vector<Candidate> propose(const ParamSpace& space,
                                 std::size_t budget_left, Rng& rng) override;
  void observe(const std::vector<Trial>& batch) override { (void)batch; }

 private:
  std::size_t batch_size_;
  bool first_ = true;
};

/// Model-guided successive-halving local search: rung 0 is a random
/// population (led by the default candidate); each later rung keeps the
/// `survivors` best trials seen so far and proposes neighbours of them with
/// a step size that halves per rung — broad early, fine-grained late.
class HalvingSearch : public Strategy {
 public:
  struct Options {
    std::size_t population = 8;  ///< rung-0 batch size
    std::size_t survivors = 2;   ///< elites kept per later rung
    int initial_step = 4;        ///< neighbour step (grid indices) at rung 1
  };

  HalvingSearch() : HalvingSearch(Options{}) {}
  explicit HalvingSearch(Options options);
  const char* name() const override { return "halving"; }
  std::vector<Candidate> propose(const ParamSpace& space,
                                 std::size_t budget_left, Rng& rng) override;
  void observe(const std::vector<Trial>& batch) override;

 private:
  Options opts_;
  int rung_ = 0;
  std::vector<Trial> elites_;  ///< best-so-far, ascending by (score, -index)
};

std::unique_ptr<Strategy> make_strategy(const std::string& name);

/// Applies candidates to the network in place and scores them with one
/// campaign per candidate.  Construction snapshots the LTE configs of the
/// target carrier's cells; restore() (and the destructor) puts them back,
/// so a driver run leaves the caller's deployment bit-identical.
class Evaluator {
 public:
  Evaluator(net::Deployment& network, const ParamSpace& space,
            sim::CampaignOptions campaign, Objective objective);
  ~Evaluator();

  Evaluator(const Evaluator&) = delete;
  Evaluator& operator=(const Evaluator&) = delete;

  /// Evaluate the unmodified (restored) network — the seed baseline.
  Trial evaluate_baseline(const std::vector<geo::CityId>& cities = {});

  /// Apply `c` to every LTE cell of the campaign carrier and run one
  /// campaign over `cities` (empty = the campaign template's cities).
  Trial evaluate(const Candidate& c, std::size_t index,
                 const std::vector<geo::CityId>& cities = {});

  void restore();

 private:
  Trial run_scored(std::size_t index, const std::vector<geo::CityId>& cities);

  net::Deployment& network_;
  const ParamSpace& space_;
  sim::CampaignOptions campaign_;
  Objective objective_;
  /// (cell index, original config) for every LTE cell of the carrier.
  std::vector<std::pair<std::size_t, config::CellConfig>> saved_;
};

struct OptOptions {
  std::uint64_t seed = 1;     ///< strategy RNG stream (not the campaign seed)
  std::size_t budget = 32;    ///< max candidate evaluations (campaigns)
  Objective objective;
};

struct OptResult {
  Trial baseline;             ///< unmodified world, same campaign + seed
  std::vector<Trial> trials;  ///< evaluation order
  std::size_t best_index = 0;

  const Trial& best() const { return trials.at(best_index); }
};

/// Run the closed loop until the budget is spent (or the strategy stops
/// proposing).  Best = highest score, earliest trial on ties.  The network
/// is restored before returning.
OptResult optimize(net::Deployment& network, const ParamSpace& space,
                   Strategy& strategy, const sim::CampaignOptions& campaign,
                   const OptOptions& options);

/// One city's seed-vs-tuned comparison.
struct CityEval {
  geo::CityId city = 0;
  Trial seed;   ///< unmodified configs
  Trial tuned;  ///< best candidate applied
  double improvement() const { return tuned.score - seed.score; }
};

/// The transfer experiment: tune on `tune_city`, then evaluate both the
/// seed configs and the tuned candidate on every city in `eval_cities`
/// (typically the tuning city plus held-out ones), each with its own
/// campaign over that city alone.
struct TransferReport {
  geo::CityId tune_city = 0;
  OptResult tuning;
  std::vector<CityEval> cities;  ///< eval_cities order
};

TransferReport run_transfer(net::Deployment& network, const ParamSpace& space,
                            Strategy& strategy,
                            const sim::CampaignOptions& campaign_template,
                            geo::CityId tune_city,
                            const std::vector<geo::CityId>& eval_cities,
                            const OptOptions& options);

}  // namespace mmlab::opt
