#include "mmlab/opt/param_space.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "mmlab/config/quant.hpp"

namespace mmlab::opt {

namespace {

/// Enumerate a linear quant grid via its decoder, keeping values in
/// [lo, hi] — the decoder is the single source of truth for the grid, so a
/// quant change can never silently desynchronize the search space.
template <typename Decode>
std::vector<double> linear_grid(Decode decode, std::uint64_t ie_count,
                                double lo, double hi) {
  std::vector<double> grid;
  for (std::uint64_t ie = 0; ie < ie_count; ++ie) {
    const double v = decode(ie);
    if (v >= lo && v <= hi) grid.push_back(v);
  }
  return grid;
}

std::vector<double> bounded(const std::vector<double>& full, double lo,
                            double hi) {
  std::vector<double> grid;
  for (double v : full)
    if (v >= lo && v <= hi) grid.push_back(v);
  return grid;
}

/// Round-trip every grid point through the matching quant encoder; a point
/// the encoder rejects would let the optimizer propose configurations the
/// RRC codec cannot broadcast.
void assert_on_grid(const ParamDim& dim) {
  for (double v : dim.grid) {
    switch (dim.id) {
      case ParamDim::Id::kA3OffsetDb: config::quant::encode_a3_offset(v); break;
      case ParamDim::Id::kTttMs:
        config::quant::encode_ttt(static_cast<Millis>(v));
        break;
      case ParamDim::Id::kHysteresisDb:
        config::quant::encode_hysteresis(v);
        break;
      case ParamDim::Id::kQRxLevMinDbm:
        config::quant::encode_q_rxlevmin(v);
        break;
      case ParamDim::Id::kServingPriority:
        if (v < 0.0 || v > 7.0 || v != std::floor(v))
          throw std::invalid_argument("opt: bad priority grid value");
        break;
      case ParamDim::Id::kQHystDb: config::quant::encode_q_hyst(v); break;
    }
  }
}

}  // namespace

ParamSpace::ParamSpace(std::vector<ParamDim> dims) : dims_(std::move(dims)) {
  for (const auto& dim : dims_) {
    if (dim.grid.empty())
      throw std::invalid_argument("opt: empty grid for " + dim.name);
    for (std::size_t i = 1; i < dim.grid.size(); ++i)
      if (dim.grid[i] <= dim.grid[i - 1])
        throw std::invalid_argument("opt: non-ascending grid for " + dim.name);
    assert_on_grid(dim);
  }
}

ParamSpace ParamSpace::standard() {
  using Id = ParamDim::Id;
  std::vector<ParamDim> dims;
  dims.push_back({Id::kA3OffsetDb, "a3-offset",
                  linear_grid(config::quant::decode_a3_offset, 61, -2.0, 10.0)});
  {
    // TTT 0 means an instantaneous trigger — excluded: it turns every
    // momentary fade into a handoff and no operator in the paper runs it.
    std::vector<double> ttt;
    for (Millis ms : config::quant::ttt_grid())
      if (ms >= 40 && ms <= 5120) ttt.push_back(static_cast<double>(ms));
    dims.push_back({Id::kTttMs, "ttt", std::move(ttt)});
  }
  dims.push_back({Id::kHysteresisDb, "hysteresis",
                  linear_grid(config::quant::decode_hysteresis, 31, 0.0, 5.0)});
  dims.push_back(
      {Id::kQRxLevMinDbm, "q-rxlevmin",
       linear_grid(config::quant::decode_q_rxlevmin, 49, -130.0, -110.0)});
  dims.push_back(
      {Id::kServingPriority, "priority", {0, 1, 2, 3, 4, 5, 6, 7}});
  dims.push_back(
      {Id::kQHystDb, "q-hyst", bounded(config::quant::q_hyst_grid(), 0.0, 12.0)});
  return ParamSpace(std::move(dims));
}

Candidate ParamSpace::default_candidate() const {
  Candidate c;
  c.reserve(dims_.size());
  for (const auto& dim : dims_) {
    double v = dim.grid.front();
    switch (dim.id) {
      case ParamDim::Id::kA3OffsetDb: v = 2.0; break;
      case ParamDim::Id::kTttMs: v = 320.0; break;
      case ParamDim::Id::kHysteresisDb: v = 1.0; break;
      case ParamDim::Id::kQRxLevMinDbm: v = -122.0; break;
      case ParamDim::Id::kServingPriority: v = 4.0; break;
      case ParamDim::Id::kQHystDb: v = 4.0; break;
    }
    c.push_back(v);
  }
  validate(c);
  return c;
}

Candidate ParamSpace::sample(Rng& rng) const {
  Candidate c;
  c.reserve(dims_.size());
  for (const auto& dim : dims_)
    c.push_back(dim.grid[rng.below(dim.grid.size())]);
  return c;
}

Candidate ParamSpace::neighbor(const Candidate& base, Rng& rng,
                               int max_step) const {
  validate(base);
  if (max_step < 1) max_step = 1;
  Candidate c;
  c.reserve(dims_.size());
  for (std::size_t d = 0; d < dims_.size(); ++d) {
    const auto& grid = dims_[d].grid;
    const auto idx = static_cast<std::int64_t>(index_of(d, base[d]));
    // Non-zero step in [-max_step, max_step], clamped to the grid.
    std::int64_t step =
        rng.between(1, max_step) * (rng.chance(0.5) ? 1 : -1);
    std::int64_t next = idx + step;
    if (next < 0) next = 0;
    const auto last = static_cast<std::int64_t>(grid.size()) - 1;
    if (next > last) next = last;
    c.push_back(grid[static_cast<std::size_t>(next)]);
  }
  return c;
}

void ParamSpace::validate(const Candidate& c) const {
  if (c.size() != dims_.size())
    throw std::invalid_argument("opt: candidate arity mismatch");
  for (std::size_t d = 0; d < dims_.size(); ++d) index_of(d, c[d]);
}

std::size_t ParamSpace::index_of(std::size_t d, double value) const {
  const auto& grid = dims_[d].grid;
  for (std::size_t i = 0; i < grid.size(); ++i)
    if (grid[i] == value) return i;
  throw std::invalid_argument("opt: off-grid value for " + dims_[d].name +
                              ": " + std::to_string(value));
}

void ParamSpace::apply(const Candidate& c, config::CellConfig& cfg) const {
  validate(c);
  for (std::size_t d = 0; d < dims_.size(); ++d) {
    const double v = c[d];
    switch (dims_[d].id) {
      case ParamDim::Id::kA3OffsetDb:
        for (auto& ev : cfg.report_configs)
          if (ev.type == config::EventType::kA3 ||
              ev.type == config::EventType::kA6)
            ev.offset_db = v;
        break;
      case ParamDim::Id::kTttMs:
        // The A2 measurement gate and periodic reports keep their own
        // timing: the knob tunes the *decisive* trigger latency.
        for (auto& ev : cfg.report_configs)
          if (config::event_involves_neighbor(ev.type) &&
              ev.type != config::EventType::kPeriodic)
            ev.time_to_trigger = static_cast<Millis>(v);
        break;
      case ParamDim::Id::kHysteresisDb:
        for (auto& ev : cfg.report_configs)
          if (config::event_involves_neighbor(ev.type) &&
              ev.type != config::EventType::kPeriodic)
            ev.hysteresis_db = v;
        break;
      case ParamDim::Id::kQRxLevMinDbm:
        cfg.serving.q_rxlevmin_dbm = v;
        break;
      case ParamDim::Id::kServingPriority:
        cfg.serving.priority = static_cast<int>(v);
        break;
      case ParamDim::Id::kQHystDb:
        cfg.serving.q_hyst_db = v;
        break;
    }
  }
}

std::string ParamSpace::describe(const Candidate& c) const {
  validate(c);
  std::string out;
  char buf[64];
  for (std::size_t d = 0; d < dims_.size(); ++d) {
    const char* unit = "";
    switch (dims_[d].id) {
      case ParamDim::Id::kA3OffsetDb:
      case ParamDim::Id::kHysteresisDb:
      case ParamDim::Id::kQHystDb: unit = "dB"; break;
      case ParamDim::Id::kTttMs: unit = "ms"; break;
      case ParamDim::Id::kQRxLevMinDbm: unit = "dBm"; break;
      case ParamDim::Id::kServingPriority: break;
    }
    if (dims_[d].id == ParamDim::Id::kTttMs ||
        dims_[d].id == ParamDim::Id::kServingPriority)
      std::snprintf(buf, sizeof buf, "%s=%lld%s", dims_[d].name.c_str(),
                    static_cast<long long>(c[d]), unit);
    else
      std::snprintf(buf, sizeof buf, "%s=%.1f%s", dims_[d].name.c_str(), c[d],
                    unit);
    if (!out.empty()) out += ' ';
    out += buf;
  }
  return out;
}

}  // namespace mmlab::opt
