// The optimization objective (paper §5: late handoffs cost throughput,
// §5.2: ping-pong; Benzaghta et al. optimize the same trade-off).
//
// A candidate configuration is judged by one campaign (sim::run_campaign)
// over the tuning city.  compute_metrics() reduces the CampaignResult to
// the scalar facts the trade-off is made of; Objective::score() collapses
// them into a single number to MAXIMIZE:
//
//   score = w_throughput * mean_thpt_Mbps
//         - w_pingpong   * pingpongs / km
//         - w_rlf        * radio_link_failures / km
//         - w_handoff_failure * handoff_failures / km
//
// Mobility penalties are per-km so the objective compares across cities and
// campaign sizes; throughput rewards the campaign-wide per-tick mean.  All
// inputs fold deterministically in run_campaign, so a (world, campaign
// seed, candidate) triple maps to exactly one score bit pattern for any
// thread count — the property the optimizer's determinism contract needs.
#pragma once

#include <cstddef>

#include "mmlab/sim/drive_test.hpp"

namespace mmlab::opt {

/// Scalar facts of one campaign evaluation.
struct CampaignMetrics {
  double mean_throughput_bps = 0.0;
  std::size_t handoffs = 0;
  std::size_t pingpongs = 0;  ///< A->B then B->A within the window
  std::size_t radio_link_failures = 0;
  std::size_t handoff_failures = 0;
  double total_km = 0.0;
};

/// Count ping-pongs in a pooled handoff list: handoff i is a ping-pong when
/// it reverts handoff i-1 (from == previous to, to == previous from) within
/// `window_ms` of its execution.  Campaign drives each restart at t=0 and
/// handoffs are pooled in drive order, so a non-monotone exec_time marks a
/// drive boundary and the pair is not considered.
std::size_t count_pingpongs(const std::vector<sim::HandoffPerf>& handoffs,
                            Millis window_ms);

CampaignMetrics compute_metrics(const sim::CampaignResult& campaign,
                                Millis pingpong_window_ms = 5'000);

/// Weighted scalarization; higher is better.  Defaults reward throughput in
/// Mbps and price one ping-pong per km like ~2 Mbps of mean throughput, an
/// RLF at 5 Mbps and a failed handoff decision at 1 Mbps.
struct Objective {
  double w_throughput = 1.0;
  double w_pingpong = 2.0;
  double w_rlf = 5.0;
  double w_handoff_failure = 1.0;
  Millis pingpong_window_ms = 5'000;

  double score(const CampaignMetrics& m) const;
};

}  // namespace mmlab::opt
