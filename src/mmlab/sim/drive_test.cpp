#include "mmlab/sim/drive_test.hpp"

#include <stdexcept>

#include "mmlab/util/worker_pool.hpp"

namespace mmlab::sim {

DriveTestResult run_drive_test(const net::Deployment& network,
                               const mobility::Route& route,
                               const DriveTestOptions& options) {
  ue::UeOptions ue_opts;
  ue_opts.seed = options.seed;
  ue_opts.carrier = options.carrier;
  ue_opts.band_support = options.band_support;
  ue_opts.active_mode = options.workload != Workload::kNone;
  ue_opts.log_radio_snapshots = true;
  ue::Ue device(network, ue_opts);

  traffic::SpeedtestApp speedtest;
  traffic::ConstantRateApp iperf(options.workload == Workload::kIperf5k
                                     ? 5e3
                                     : 1e6);
  traffic::PingApp ping;

  const Millis duration = route.duration();
  for (Millis t = 0; t <= duration; t += options.tick_ms) {
    const SimTime now = options.start_time + t;
    device.step(route.position_at(t), now);
    const auto& tick = device.link_tick();
    switch (options.workload) {
      case Workload::kSpeedtest: speedtest.on_tick(tick); break;
      case Workload::kIperf5k:
      case Workload::kIperf1M: iperf.on_tick(tick); break;
      case Workload::kPing: ping.on_tick(tick); break;
      case Workload::kNone: break;
    }
  }

  DriveTestResult result;
  result.handoffs = device.handoffs();
  result.handoff_failures = device.handoff_failures();
  switch (options.workload) {
    case Workload::kSpeedtest: result.throughput = speedtest.samples(); break;
    case Workload::kIperf5k:
    case Workload::kIperf1M: result.throughput = iperf.samples(); break;
    case Workload::kPing: result.probes = ping.probes(); break;
    case Workload::kNone: break;
  }
  result.diag_log = device.take_diag_log();
  result.radio_link_failures = device.radio_link_failures();
  result.route_length_m = route.length_m();
  result.duration = duration;
  return result;
}

std::vector<HandoffPerf> annotate_handoffs(const DriveTestResult& result) {
  std::vector<HandoffPerf> out;
  out.reserve(result.handoffs.size());
  // The recorded throughput span (samples are appended tick by tick, so the
  // vector is time-ordered).  Windows are clamped to it — see the
  // HandoffPerf contract; +1 ms makes the half-open end include the last
  // sample.
  const SimTime span_begin =
      result.throughput.empty() ? SimTime{0} : result.throughput.front().t;
  const SimTime span_end = result.throughput.empty()
                               ? SimTime{0}
                               : result.throughput.back().t + 1;
  for (const auto& rec : result.handoffs) {
    HandoffPerf hp;
    hp.rec = rec;
    if (!result.throughput.empty()) {
      SimTime before_from = rec.report_time - 10'000;
      if (before_from < span_begin) {
        before_from = span_begin;
        hp.before_window_truncated = true;
      }
      hp.min_thpt_before_bps = traffic::min_binned_throughput_bps(
          result.throughput, before_from, rec.report_time, 100);
      hp.min_thpt_before_1s_bps = traffic::min_binned_throughput_bps(
          result.throughput, before_from, rec.report_time, 1'000);
      const SimTime after_from = rec.exec_time + 100;
      SimTime after_to = rec.exec_time + 5'000;
      if (after_to > span_end) {
        after_to = span_end;
        hp.after_window_truncated = true;
      }
      hp.mean_thpt_after_bps =
          traffic::mean_throughput_bps(result.throughput, after_from, after_to);
    }
    out.push_back(hp);
  }
  return out;
}

namespace {

/// One campaign drive, fully annotated — the unit the fan-out parallelizes.
struct DriveOutcome {
  std::vector<HandoffPerf> handoffs;
  std::size_t radio_link_failures = 0;
  std::size_t handoff_failures = 0;
  double throughput_sum_bps = 0.0;
  std::size_t throughput_samples = 0;
  double km = 0.0;
};

DriveOutcome summarize_drive(const DriveTestResult& drive) {
  DriveOutcome out;
  out.handoffs = annotate_handoffs(drive);
  out.radio_link_failures = drive.radio_link_failures;
  out.handoff_failures = drive.handoff_failures.size();
  for (const auto& s : drive.throughput) out.throughput_sum_bps += s.bps;
  out.throughput_samples = drive.throughput.size();
  out.km = drive.route_length_m / 1000.0;
  return out;
}

DriveOutcome run_city_drive(const net::Deployment& network,
                            const CampaignOptions& options,
                            const Rng& campaign_rng, const geo::City& city,
                            int index) {
  Rng route_rng = campaign_rng.fork(0x1000u + city.id * 64u + index);
  const auto route = mobility::manhattan_drive(
      route_rng, city, mobility::kph(40), options.city_drive_duration);
  DriveTestOptions dopts;
  dopts.seed = route_rng.next_u64();
  dopts.carrier = options.carrier;
  dopts.workload = options.workload;
  dopts.band_support = options.band_support;
  return summarize_drive(run_drive_test(network, route, dopts));
}

DriveOutcome run_highway_drive(const net::Deployment& network,
                               const CampaignOptions& options,
                               const Rng& campaign_rng, const geo::City& city,
                               int index) {
  Rng route_rng = campaign_rng.fork(0x2000u + city.id * 64u + index);
  // Diagonal crossing at highway speed (90-120 km/h).
  const double inset = 0.05 * city.extent_m;
  const geo::Point a{city.origin.x + inset,
                     city.origin.y + inset +
                         route_rng.uniform(0.0, 0.3) * city.extent_m};
  const geo::Point b{city.origin.x + city.extent_m - inset,
                     city.origin.y + city.extent_m - inset -
                         route_rng.uniform(0.0, 0.3) * city.extent_m};
  const auto route = mobility::highway_drive(
      a, b, mobility::kph(route_rng.uniform(90.0, 120.0)));
  DriveTestOptions dopts;
  dopts.seed = route_rng.next_u64();
  dopts.carrier = options.carrier;
  dopts.workload = options.workload;
  dopts.band_support = options.band_support;
  return summarize_drive(run_drive_test(network, route, dopts));
}

}  // namespace

CampaignResult run_campaign(const net::Deployment& network,
                            const CampaignOptions& options) {
  // Plan: enumerate the (city × kind × index) drives in the serial order.
  // Cities are validated up front so an unknown id throws before any drive
  // runs, whatever the thread count.
  struct DriveJob {
    const geo::City* city;
    bool highway;
    int index;
  };
  std::vector<DriveJob> jobs;
  for (geo::CityId city_id : options.cities) {
    const geo::City* city = network.find_city(city_id);
    if (!city) throw std::invalid_argument("run_campaign: unknown city");
    for (int i = 0; i < options.city_drives_per_city; ++i)
      jobs.push_back({city, false, i});
    for (int i = 0; i < options.highway_drives_per_city; ++i)
      jobs.push_back({city, true, i});
  }

  // Execute: each drive is an independent job.  The campaign rng is never
  // advanced (fork is const), the network is only read, and every job
  // writes its own pre-allocated slot.
  const Rng campaign_rng(options.seed);
  std::vector<DriveOutcome> outcomes(jobs.size());
  parallel_for_index(options.threads, jobs.size(), [&](std::size_t j) {
    const DriveJob& job = jobs[j];
    outcomes[j] = job.highway
                      ? run_highway_drive(network, options, campaign_rng,
                                          *job.city, job.index)
                      : run_city_drive(network, options, campaign_rng,
                                       *job.city, job.index);
  });

  // Fold in job (= serial drive) order, so the pooled handoff list and the
  // floating-point km accumulation match the single-threaded walk exactly.
  CampaignResult result;
  for (auto& outcome : outcomes) {
    for (auto& hp : outcome.handoffs) result.handoffs.push_back(hp);
    result.radio_link_failures += outcome.radio_link_failures;
    result.handoff_failures += outcome.handoff_failures;
    result.throughput_sum_bps += outcome.throughput_sum_bps;
    result.throughput_samples += outcome.throughput_samples;
    result.total_km += outcome.km;
    ++result.drives;
  }
  return result;
}

}  // namespace mmlab::sim
