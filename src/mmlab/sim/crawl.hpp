// Type-I measurements (paper §3): crowdsourced configuration crawling —
// dataset D2.
//
// Volunteers' phones camp across nearby cells (MMLab's proactive cell
// switching) and log every broadcast SIB into the diag stream.  The crawl
// engine visits each cell on a sampling schedule spread over the collection
// window (giving Fig 13a's samples-per-cell distribution), applies each
// cell's scheduled reconfigurations as their day arrives (Fig 13b's temporal
// dynamics), and emits one diag log per carrier — the exact input MMLab's
// analyzer consumes.
#pragma once

#include <string>
#include <vector>

#include "mmlab/netgen/generator.hpp"

namespace mmlab::sim {

struct CrawlOptions {
  std::uint64_t seed = 7;
  /// Mean number of visit rounds per cell (paper: 48.1 % of cells have >1
  /// sample, tail up to 20+).
  double mean_rounds = 3.2;
};

/// One carrier's pooled diag log (a volunteer's phone knows its operator).
struct CarrierLog {
  net::CarrierId carrier = 0;
  std::string acronym;
  std::vector<std::uint8_t> diag_log;
};

struct CrawlResult {
  std::vector<CarrierLog> logs;
  std::size_t total_camps = 0;
};

/// Runs the crawl. Mutates `world` (temporal reconfigurations are applied to
/// the deployment as their scheduled day passes).
CrawlResult run_crawl(netgen::GeneratedWorld& world,
                      const CrawlOptions& options);

}  // namespace mmlab::sim
