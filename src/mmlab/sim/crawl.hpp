// Type-I measurements (paper §3): crowdsourced configuration crawling —
// dataset D2.
//
// Volunteers' phones camp across nearby cells (MMLab's proactive cell
// switching) and log every broadcast SIB into the diag stream.  The crawl
// engine visits each cell on a sampling schedule spread over the collection
// window (giving Fig 13a's samples-per-cell distribution), applies each
// cell's scheduled reconfigurations as their day arrives (Fig 13b's temporal
// dynamics), and emits one diag log per carrier — the exact input MMLab's
// analyzer consumes.
//
// The engine is split into two phases (see DESIGN.md §8):
//   * plan    — serial and cheap: draw every cell's visit rounds and days
//               from the crawl Rng exactly as the historical serial walk
//               did, sort them into one global timeline, and derive the
//               per-carrier UE seeds via Rng::fork (which is const, so the
//               seeds are independent of any execution order).
//   * execute — fan the per-carrier visit subsequences out over
//               util::WorkerPool.  Each shard owns exactly one carrier: its
//               crawling UE, its (disjoint) set of cells, and those cells'
//               reconfiguration schedules, which it applies lazily as its
//               visits pass them.
// Because a crawl UE only ever reads the cell it camps on, cells belong to
// exactly one carrier, and netgen::apply_config_update writes only the
// target cell, shards share no mutable state — the CrawlResult is
// bit-identical for every thread count (same contract style as
// core::extract_configs_parallel; pinned by the CrawlParallel test suite).
#pragma once

#include <string>
#include <vector>

#include "mmlab/netgen/generator.hpp"

namespace mmlab::sim {

struct CrawlOptions {
  std::uint64_t seed = 7;
  /// Mean number of visit rounds per cell (paper: 48.1 % of cells have >1
  /// sample, tail up to 20+).
  double mean_rounds = 3.2;
  /// Worker threads for the execute phase: 0 = one per hardware thread,
  /// 1 = run the shards inline on the calling thread.  The result is
  /// bit-identical for every value.
  unsigned threads = 0;
};

/// One carrier's pooled diag log (a volunteer's phone knows its operator).
struct CarrierLog {
  net::CarrierId carrier = 0;
  std::string acronym;
  std::vector<std::uint8_t> diag_log;
};

struct CrawlResult {
  std::vector<CarrierLog> logs;
  std::size_t total_camps = 0;
};

/// Runs the crawl. Mutates `world` (temporal reconfigurations are applied to
/// the deployment as their scheduled day passes).
CrawlResult run_crawl(netgen::GeneratedWorld& world,
                      const CrawlOptions& options);

}  // namespace mmlab::sim
