#include "mmlab/sim/crawl.hpp"

#include <algorithm>
#include <stdexcept>

#include "mmlab/ue/ue.hpp"

namespace mmlab::sim {

namespace {

/// Visit-round count: geometric-ish with a heavy-one mass, calibrated to
/// Fig 13a (about half the cells observed once, tail reaching 20+).
int draw_rounds(Rng& rng, double mean_rounds) {
  if (rng.chance(0.52)) return 1;
  // Remaining mass: shifted geometric with mean chosen to hit mean_rounds.
  const double remaining_mean = (mean_rounds - 0.52) / 0.48;
  const double p = 1.0 / std::max(1.5, remaining_mean - 1.0);
  int n = 2;
  while (n < 24 && rng.chance(1.0 - p)) ++n;
  return n;
}

}  // namespace

CrawlResult run_crawl(netgen::GeneratedWorld& world,
                      const CrawlOptions& options) {
  CrawlResult result;
  const auto& network = world.network;
  const double window_days = world.options.window_days;

  // Per-cell visit schedules.
  struct Visit {
    double day;
    std::uint32_t cell_index;
  };
  Rng rng(options.seed);
  std::vector<Visit> visits;
  visits.reserve(static_cast<std::size_t>(
      static_cast<double>(network.cells().size()) * options.mean_rounds));
  for (std::uint32_t i = 0; i < network.cells().size(); ++i) {
    const int rounds = draw_rounds(rng, options.mean_rounds);
    for (int r = 0; r < rounds; ++r)
      visits.push_back({rng.uniform(0.0, window_days), i});
  }
  std::sort(visits.begin(), visits.end(),
            [](const Visit& a, const Visit& b) { return a.day < b.day; });

  // One crawling UE per carrier, pooling all its volunteers' logs.  The
  // vector is aligned with network.carriers() *positions* — carrier ids are
  // opaque labels and need not be dense, so every id-keyed lookup below goes
  // through carrier_position().
  std::vector<std::unique_ptr<ue::Ue>> crawlers;
  for (const auto& carrier : network.carriers()) {
    ue::UeOptions opts;
    opts.seed = rng.fork(carrier.id).next_u64();
    opts.carrier = carrier.id;
    // The crawl phone opens a short data connection at each camped cell so
    // the log also captures measConfig (the paper's D2 covers reporting
    // events, which are signalled — not broadcast).
    opts.active_mode = true;
    opts.log_radio_snapshots = false;
    crawlers.push_back(std::make_unique<ue::Ue>(network, opts));
  }

  // Walk visits in time order; apply due reconfigurations lazily per cell.
  std::vector<std::size_t> next_update(network.cells().size(), 0);
  for (const auto& visit : visits) {
    auto& schedule = world.update_schedule[visit.cell_index];
    auto& cursor = next_update[visit.cell_index];
    while (cursor < schedule.size() && schedule[cursor].day <= visit.day) {
      netgen::apply_config_update(world, visit.cell_index, schedule[cursor]);
      ++cursor;
    }
    const net::Cell& cell = network.cells()[visit.cell_index];
    const SimTime t = SimTime::from_days(visit.day);
    const std::size_t pos = network.carrier_position(cell.carrier);
    if (pos == net::Deployment::kNoCarrier)
      throw std::logic_error("run_crawl: cell references unknown carrier");
    crawlers[pos]->force_camp(cell.id, cell.position, t);
    ++result.total_camps;
  }

  // Log handoff: one pooled diag log per carrier, in carriers() order — the
  // order extract_configs_parallel() preserves when merging shards.
  for (std::size_t pos = 0; pos < network.carriers().size(); ++pos) {
    const net::Carrier& carrier = network.carriers()[pos];
    CarrierLog log;
    log.carrier = carrier.id;
    log.acronym = carrier.acronym;
    log.diag_log = crawlers[pos]->take_diag_log();
    result.logs.push_back(std::move(log));
  }
  return result;
}

}  // namespace mmlab::sim
