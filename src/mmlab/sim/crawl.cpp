#include "mmlab/sim/crawl.hpp"

#include <algorithm>
#include <stdexcept>

#include "mmlab/ue/ue.hpp"
#include "mmlab/util/worker_pool.hpp"

namespace mmlab::sim {

namespace {

/// Visit-round count: geometric-ish with a heavy-one mass, calibrated to
/// Fig 13a (about half the cells observed once, tail reaching 20+).
int draw_rounds(Rng& rng, double mean_rounds) {
  if (rng.chance(0.52)) return 1;
  // Remaining mass: shifted geometric with mean chosen to hit mean_rounds.
  const double remaining_mean = (mean_rounds - 0.52) / 0.48;
  const double p = 1.0 / std::max(1.5, remaining_mean - 1.0);
  int n = 2;
  while (n < 24 && rng.chance(1.0 - p)) ++n;
  return n;
}

struct Visit {
  double day;
  std::uint32_t cell_index;
};

}  // namespace

CrawlResult run_crawl(netgen::GeneratedWorld& world,
                      const CrawlOptions& options) {
  const auto& network = world.network;
  const double window_days = world.options.window_days;

  // --- Plan phase (serial) --------------------------------------------------
  // Per-cell visit schedules; draw order is the historical serial one, so
  // the visit timeline is byte-for-byte what the single-threaded engine
  // produced.
  Rng rng(options.seed);
  std::vector<Visit> visits;
  visits.reserve(static_cast<std::size_t>(
      static_cast<double>(network.cells().size()) * options.mean_rounds));
  for (std::uint32_t i = 0; i < network.cells().size(); ++i) {
    const int rounds = draw_rounds(rng, options.mean_rounds);
    for (int r = 0; r < rounds; ++r)
      visits.push_back({rng.uniform(0.0, window_days), i});
  }
  std::sort(visits.begin(), visits.end(),
            [](const Visit& a, const Visit& b) { return a.day < b.day; });

  // Cut the global timeline into per-carrier subsequences (each preserves
  // the time order).  Carrier ids are opaque labels and need not be dense,
  // so every id-keyed lookup goes through carrier_position().
  const std::size_t n_carriers = network.carriers().size();
  std::vector<std::vector<Visit>> shards(n_carriers);
  for (const auto& visit : visits) {
    const net::Cell& cell = network.cells()[visit.cell_index];
    const std::size_t pos = network.carrier_position(cell.carrier);
    if (pos == net::Deployment::kNoCarrier)
      throw std::logic_error("run_crawl: cell references unknown carrier");
    shards[pos].push_back(visit);
  }

  // --- Execute phase --------------------------------------------------------
  // One crawling UE per carrier, pooling all its volunteers' logs.  Each
  // shard touches only its own carrier's cells (visits, lazy
  // reconfigurations, camps), so shards run concurrently without
  // synchronization and the merged result does not depend on scheduling.
  //
  // Rng::fork is const — concurrent forks off the (no longer advanced) plan
  // rng are plain reads, and each seed equals the one the serial walk drew.
  CrawlResult result;
  result.logs.resize(n_carriers);
  std::vector<std::size_t> shard_camps(n_carriers, 0);
  parallel_for_index(options.threads, n_carriers, [&](std::size_t pos) {
    const net::Carrier& carrier = network.carriers()[pos];
    ue::UeOptions opts;
    opts.seed = rng.fork(carrier.id).next_u64();
    opts.carrier = carrier.id;
    // The crawl phone opens a short data connection at each camped cell so
    // the log also captures measConfig (the paper's D2 covers reporting
    // events, which are signalled — not broadcast).
    opts.active_mode = true;
    opts.log_radio_snapshots = false;
    ue::Ue crawler(network, opts);

    // Walk this carrier's visits in time order; apply due reconfigurations
    // lazily per cell.  Each cell belongs to exactly one carrier, so the
    // cursors (and the cells they update) are private to this shard.
    std::vector<std::size_t> next_update(network.cells().size(), 0);
    for (const Visit& visit : shards[pos]) {
      auto& schedule = world.update_schedule[visit.cell_index];
      auto& cursor = next_update[visit.cell_index];
      while (cursor < schedule.size() && schedule[cursor].day <= visit.day) {
        netgen::apply_config_update(world, visit.cell_index, schedule[cursor]);
        ++cursor;
      }
      const net::Cell& cell = network.cells()[visit.cell_index];
      crawler.force_camp(cell, cell.position, SimTime::from_days(visit.day));
    }
    shard_camps[pos] = shards[pos].size();

    CarrierLog log;
    log.carrier = carrier.id;
    log.acronym = carrier.acronym;
    log.diag_log = crawler.take_diag_log();
    result.logs[pos] = std::move(log);
  });

  // Fold the per-shard camp counts in carriers() order — the same total the
  // serial walk accumulated visit by visit.
  for (std::size_t camps : shard_camps) result.total_camps += camps;
  return result;
}

}  // namespace mmlab::sim
