#include "mmlab/sim/fleet.hpp"

#include <algorithm>

#include "mmlab/diag/log.hpp"

namespace mmlab::sim {

std::vector<DeviceUpload> split_crawl_uploads(
    const std::vector<CarrierLog>& logs, unsigned devices) {
  devices = std::max(devices, 1u);
  std::vector<DeviceUpload> uploads;
  for (const auto& log : logs) {
    std::vector<diag::Writer> writers(devices);
    diag::Parser parser(log.diag_log);
    diag::Record rec;
    // Records before the first camp belong to no phone in particular; give
    // them to device 0 so nothing is dropped.
    std::size_t device = 0;
    long camp_index = -1;
    while (parser.next(rec)) {
      if (rec.code == diag::LogCode::kServingCellInfo) {
        ++camp_index;
        device = static_cast<std::size_t>(camp_index) % devices;
      }
      writers[device].append(rec);
    }
    for (auto& writer : writers) {
      if (writer.record_count() == 0) continue;
      DeviceUpload upload;
      upload.carrier = log.acronym;
      upload.diag_log = std::move(writer).take();
      uploads.push_back(std::move(upload));
    }
  }
  return uploads;
}

}  // namespace mmlab::sim
