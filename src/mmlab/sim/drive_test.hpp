// Type-II measurements (paper §4): drive a UE along a route with a workload
// and record handoffs, throughput and the device diag log — dataset D1.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "mmlab/mobility/route.hpp"
#include "mmlab/net/deployment.hpp"
#include "mmlab/traffic/apps.hpp"
#include "mmlab/ue/ue.hpp"

namespace mmlab::sim {

enum class Workload {
  kNone,       ///< idle drive (idle-state handoffs only)
  kSpeedtest,  ///< continuous full-buffer download
  kIperf5k,    ///< constant-rate 5 kbps
  kIperf1M,    ///< constant-rate 1 Mbps
  kPing,       ///< ping every 5 s
};

struct DriveTestOptions {
  std::uint64_t seed = 1;
  net::CarrierId carrier = 0;
  Workload workload = Workload::kSpeedtest;
  spectrum::BandSupport band_support = spectrum::BandSupport::all();
  Millis tick_ms = 100;
  SimTime start_time{0};
};

struct DriveTestResult {
  std::vector<ue::HandoffRecord> handoffs;
  std::vector<std::pair<SimTime, ue::HandoffFailure>> handoff_failures;
  std::vector<traffic::ThroughputSample> throughput;  ///< empty for kPing/kNone
  std::vector<traffic::PingApp::Probe> probes;        ///< kPing only
  std::vector<std::uint8_t> diag_log;
  std::size_t radio_link_failures = 0;
  double route_length_m = 0.0;
  Millis duration = 0;
};

DriveTestResult run_drive_test(const net::Deployment& network,
                               const mobility::Route& route,
                               const DriveTestOptions& options);

/// A handoff annotated with its local performance context (Fig 7-9).
///
/// Window contract at route boundaries: the nominal windows — 10 s before
/// the decisive report, [exec+100 ms, exec+5 s) after execution — are
/// CLAMPED to the drive's recorded throughput span.  A clamped window keeps
/// its numeric value (computed over the intersection; an empty intersection
/// yields 0.0 bps, the historical sentinel) and raises the matching
/// *_truncated flag, so consumers that need full-window statistics (CDFs of
/// pre-handoff minima, for instance) can filter instead of silently mixing
/// 2 s-deep minima from a drive's first handoff with true 10 s minima.
struct HandoffPerf {
  ue::HandoffRecord rec;
  /// Minimum 100 ms-binned throughput in the 10 s before the decisive
  /// report — the paper's Fig 7 fine-grained metric.
  double min_thpt_before_bps = 0.0;
  /// Same with 1 s bins (the paper's Fig 8 metric; robust to the 50 ms
  /// execution gap and momentary fades).
  double min_thpt_before_1s_bps = 0.0;
  /// Mean throughput in the 5 s after execution.
  double mean_thpt_after_bps = 0.0;
  /// The before-window started before the drive's first throughput sample
  /// and was clamped (early handoff): the minima above cover < 10 s.
  bool before_window_truncated = false;
  /// The after-window ran past the drive's last throughput sample and was
  /// clamped (handoff near the route end): the mean covers < 4.9 s.
  bool after_window_truncated = false;
};

std::vector<HandoffPerf> annotate_handoffs(const DriveTestResult& result);

/// A batch of drives: several city drives plus highway crossings in the
/// given cities, mirroring the paper's D1 collection.
struct CampaignOptions {
  std::uint64_t seed = 1;
  net::CarrierId carrier = 0;
  Workload workload = Workload::kSpeedtest;
  std::vector<geo::CityId> cities = {0, 2, 4};  ///< paper: 3 US cities
  int city_drives_per_city = 4;
  int highway_drives_per_city = 2;
  Millis city_drive_duration = 20 * kMillisPerMinute;
  spectrum::BandSupport band_support = spectrum::BandSupport::all();
  /// Worker threads for the drive fan-out: 0 = one per hardware thread,
  /// 1 = run the drives inline.  The result is bit-identical for every
  /// value (see run_campaign).
  unsigned threads = 0;
};

struct CampaignResult {
  std::vector<HandoffPerf> handoffs;  ///< annotated, all drives pooled
  std::size_t drives = 0;
  double total_km = 0.0;
  std::size_t radio_link_failures = 0;
  std::size_t handoff_failures = 0;  ///< decisions that produced no switch
  /// Campaign-wide throughput aggregate (the optimizer's objective input):
  /// sum and count of every per-tick throughput sample across all drives,
  /// folded in serial drive order so the double sum is bit-identical for
  /// every thread count.  Zero for workloads without throughput samples.
  double throughput_sum_bps = 0.0;
  std::size_t throughput_samples = 0;

  double mean_throughput_bps() const {
    return throughput_samples == 0
               ? 0.0
               : throughput_sum_bps / static_cast<double>(throughput_samples);
  }
};

/// Runs every (city × drive) of the campaign as an independent WorkerPool
/// job.  Each drive derives its route and UE seeds from Rng::fork of the
/// campaign seed with a (city, kind, index) salt — never from a shared
/// advancing stream — and writes into a pre-allocated per-job slot; the
/// slots are folded in the serial drive order afterwards.  The network is
/// only read.  Together that makes the CampaignResult (handoff annotations,
/// km totals, failure counts) bit-identical for every thread count, the
/// same contract as sim::run_crawl (pinned by the CampaignParallel suite).
CampaignResult run_campaign(const net::Deployment& network,
                            const CampaignOptions& options);

}  // namespace mmlab::sim
