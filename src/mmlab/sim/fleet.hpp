// Crowdsource fleet model: one carrier's pooled crawl log, re-cut into the
// per-device upload streams that actually produced it.
//
// run_crawl() pools every volunteer's records into one log per carrier (the
// batch pipeline's input).  The ingestion service sees the opposite shape:
// K devices per carrier, each uploading its own diag stream in chunks.
// split_crawl_uploads() reconstructs that: it walks a carrier log's records,
// groups them into camps (a kServingCellInfo record plus everything logged
// until the next one — the unit a single phone contributes), and deals camps
// round-robin onto `devices` per-device logs, re-framed with diag::Writer.
//
// Because camps are dealt whole and camp timestamps are monotone within a
// crawl log, ingesting all device streams and merging per-session yields the
// same ConfigDatabase as serial extraction of the pooled log — the property
// the ingest integration test asserts.
#pragma once

#include <string>
#include <vector>

#include "mmlab/sim/crawl.hpp"

namespace mmlab::sim {

/// One device's upload stream: a camp-aligned slice of a carrier crawl log.
struct DeviceUpload {
  std::string carrier;  ///< carrier acronym (the session attribution)
  std::vector<std::uint8_t> diag_log;
};

/// Split each carrier log across up to `devices` devices (camps dealt
/// round-robin; records before the first camp stay with device 0).  Devices
/// that end up with no records are omitted, so carriers with fewer camps
/// than `devices` produce fewer uploads.  `devices` == 0 is clamped to 1.
std::vector<DeviceUpload> split_crawl_uploads(
    const std::vector<CarrierLog>& logs, unsigned devices);

}  // namespace mmlab::sim
