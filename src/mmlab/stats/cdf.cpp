#include "mmlab/stats/cdf.hpp"

#include <algorithm>
#include <stdexcept>

namespace mmlab::stats {

EmpiricalCdf::EmpiricalCdf(std::vector<double> samples)
    : samples_(std::move(samples)), sorted_(false) {}

void EmpiricalCdf::add(double x) {
  samples_.push_back(x);
  sorted_ = false;
}

void EmpiricalCdf::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double EmpiricalCdf::at(double x) const {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  const auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
  return static_cast<double>(it - samples_.begin()) /
         static_cast<double>(samples_.size());
}

double EmpiricalCdf::quantile(double q) const {
  if (samples_.empty()) throw std::logic_error("EmpiricalCdf::quantile: empty");
  if (q < 0.0 || q > 1.0)
    throw std::invalid_argument("EmpiricalCdf::quantile: q out of range");
  ensure_sorted();
  const double pos = q * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

double EmpiricalCdf::min() const {
  if (samples_.empty()) throw std::logic_error("EmpiricalCdf::min: empty");
  ensure_sorted();
  return samples_.front();
}

double EmpiricalCdf::max() const {
  if (samples_.empty()) throw std::logic_error("EmpiricalCdf::max: empty");
  ensure_sorted();
  return samples_.back();
}

std::vector<std::pair<double, double>> EmpiricalCdf::series(
    std::size_t points) const {
  std::vector<std::pair<double, double>> out;
  if (samples_.empty() || points < 2) return out;
  ensure_sorted();
  const double lo = samples_.front(), hi = samples_.back();
  out.reserve(points);
  for (std::size_t i = 0; i < points; ++i) {
    const double x =
        lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(points - 1);
    out.emplace_back(x, at(x));
  }
  return out;
}

}  // namespace mmlab::stats
