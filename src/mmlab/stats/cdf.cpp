#include "mmlab/stats/cdf.hpp"

#include <algorithm>
#include <stdexcept>
#include <thread>

namespace mmlab::stats {

EmpiricalCdf::EmpiricalCdf(std::vector<double> samples)
    : samples_(std::move(samples)) {
  std::sort(samples_.begin(), samples_.end());
}

EmpiricalCdf::EmpiricalCdf(const EmpiricalCdf& other)
    : samples_(other.samples_) {
  // kSorting in the source means a reader is mid-sort over there, which is
  // already a read/write race on `other`; treat anything but kSorted as
  // dirty here.
  sort_state_.store(other.sort_state_.load(std::memory_order_acquire) ==
                            kSorted
                        ? kSorted
                        : kDirty,
                    std::memory_order_relaxed);
}

EmpiricalCdf& EmpiricalCdf::operator=(const EmpiricalCdf& other) {
  if (this == &other) return *this;
  samples_ = other.samples_;
  sort_state_.store(other.sort_state_.load(std::memory_order_acquire) ==
                            kSorted
                        ? kSorted
                        : kDirty,
                    std::memory_order_relaxed);
  return *this;
}

void EmpiricalCdf::add(double x) {
  samples_.push_back(x);
  sort_state_.store(kDirty, std::memory_order_release);
}

void EmpiricalCdf::ensure_sorted() const {
  int state = sort_state_.load(std::memory_order_acquire);
  if (state == kSorted) return;
  int expected = kDirty;
  if (sort_state_.compare_exchange_strong(expected, kSorting,
                                          std::memory_order_acq_rel,
                                          std::memory_order_acquire)) {
    std::sort(samples_.begin(), samples_.end());
    sort_state_.store(kSorted, std::memory_order_release);
  } else {
    // Another reader won the CAS and is sorting; wait for its commit.
    while (sort_state_.load(std::memory_order_acquire) != kSorted)
      std::this_thread::yield();
  }
}

double EmpiricalCdf::at(double x) const {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  const auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
  return static_cast<double>(it - samples_.begin()) /
         static_cast<double>(samples_.size());
}

double EmpiricalCdf::quantile(double q) const {
  if (samples_.empty()) throw std::logic_error("EmpiricalCdf::quantile: empty");
  if (q < 0.0 || q > 1.0)
    throw std::invalid_argument("EmpiricalCdf::quantile: q out of range");
  ensure_sorted();
  const double pos = q * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

double EmpiricalCdf::min() const {
  if (samples_.empty()) throw std::logic_error("EmpiricalCdf::min: empty");
  ensure_sorted();
  return samples_.front();
}

double EmpiricalCdf::max() const {
  if (samples_.empty()) throw std::logic_error("EmpiricalCdf::max: empty");
  ensure_sorted();
  return samples_.back();
}

std::vector<std::pair<double, double>> EmpiricalCdf::series(
    std::size_t points) const {
  std::vector<std::pair<double, double>> out;
  if (samples_.empty() || points < 2) return out;
  ensure_sorted();
  const double lo = samples_.front(), hi = samples_.back();
  out.reserve(points);
  for (std::size_t i = 0; i < points; ++i) {
    const double x =
        lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(points - 1);
    out.emplace_back(x, at(x));
  }
  return out;
}

}  // namespace mmlab::stats
