// The paper's configuration-diversity toolkit (§5.2, Eq. 4 and Eq. 5).
//
// Three measures characterize how diverse a parameter's values are across
// cells:
//   * richness            — number of unique values observed,
//   * Simpson index D     — 1 - sum(n_i^2)/N^2, diversity of the distribution,
//   * coefficient of var. — sqrt(Var[X]) / |E[X]|, dispersion over the range,
// plus the dependence measure zeta (Eq. 5) that quantifies how much a factor
// (frequency, city, neighborhood) explains a parameter's diversity:
//   zeta_{M,theta|F} = E[ |M(theta | F = F_j) - M(theta)| ].
#pragma once

#include <cstddef>
#include <map>
#include <vector>

namespace mmlab::stats {

/// Multiset of observed values for one parameter. Values are exact doubles;
/// configuration parameters are drawn from discrete standardized sets, so no
/// tolerance bucketing is needed.
class ValueCounts {
 public:
  void add(double value, std::size_t count = 1);

  /// Absorb another multiset (parallel scan partials merging in partition
  /// order). Equivalent to add()-ing every (value, count) of `other`.
  void merge(const ValueCounts& other);

  bool operator==(const ValueCounts&) const = default;

  std::size_t total() const { return total_; }
  std::size_t richness() const { return counts_.size(); }
  bool empty() const { return total_ == 0; }

  /// Simpson index of diversity, Eq. 4 left. 0 = single value, ->1 = even
  /// spread over many values. Empty input returns 0.
  double simpson_index() const;

  /// Coefficient of variation, Eq. 4 right.  A single repeated value (zero
  /// variance) returns 0 even when that value is 0; dispersed data with an
  /// exactly-zero mean (e.g. signed offsets straddling 0) is *undefined* and
  /// returns quiet NaN — callers must skip or propagate it, never read it as
  /// "perfectly uniform".  Empty input returns 0.
  double coefficient_of_variation() const;

  /// (value, count) pairs in increasing value order.
  const std::map<double, std::size_t>& counts() const { return counts_; }

  /// Fraction of observations equal to `value`.
  double fraction(double value) const;

  /// The value with the highest count. Requires non-empty.
  double mode() const;

  /// Expand back to a flat sample vector (for CDFs / boxplots).
  std::vector<double> samples() const;

 private:
  std::map<double, std::size_t> counts_;
  std::size_t total_ = 0;
};

/// The triple reported per parameter in Fig 16.
struct DiversityMeasures {
  double simpson = 0.0;
  double cv = 0.0;
  std::size_t richness = 0;

  bool operator==(const DiversityMeasures&) const = default;
};

DiversityMeasures measure_diversity(const ValueCounts& vc);

/// Which diversity measure zeta conditions on.
enum class DiversityMetric { kSimpson, kCv };

/// Eq. 5: mean absolute deviation of the per-group measure from the pooled
/// measure, weighted by group size (expectation over observations).
/// `groups` maps factor value -> observations of the parameter within that
/// factor level. Returns 0 for empty input.  Under kCv, groups whose Cv is
/// undefined (NaN) are skipped; an undefined pooled Cv makes the whole
/// measure NaN.
double dependence_measure(const std::map<long, ValueCounts>& groups,
                          DiversityMetric metric);

}  // namespace mmlab::stats
