#include "mmlab/stats/diversity.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace mmlab::stats {

void ValueCounts::add(double value, std::size_t count) {
  counts_[value] += count;
  total_ += count;
}

void ValueCounts::merge(const ValueCounts& other) {
  for (const auto& [value, count] : other.counts_) add(value, count);
}

double ValueCounts::simpson_index() const {
  if (total_ == 0) return 0.0;
  double sum_sq = 0.0;
  const auto n = static_cast<double>(total_);
  for (const auto& [value, count] : counts_) {
    const auto c = static_cast<double>(count);
    sum_sq += c * c;
  }
  return 1.0 - sum_sq / (n * n);
}

double ValueCounts::coefficient_of_variation() const {
  if (total_ == 0) return 0.0;
  double sum = 0.0;
  for (const auto& [value, count] : counts_)
    sum += value * static_cast<double>(count);
  const double m = sum / static_cast<double>(total_);
  double var = 0.0;
  for (const auto& [value, count] : counts_)
    var += (value - m) * (value - m) * static_cast<double>(count);
  var /= static_cast<double>(total_);
  if (var == 0.0) return 0.0;  // single value — no dispersion, mean-zero or not
  if (m == 0.0) return std::numeric_limits<double>::quiet_NaN();
  return std::sqrt(var) / std::abs(m);
}

double ValueCounts::fraction(double value) const {
  if (total_ == 0) return 0.0;
  const auto it = counts_.find(value);
  if (it == counts_.end()) return 0.0;
  return static_cast<double>(it->second) / static_cast<double>(total_);
}

double ValueCounts::mode() const {
  if (empty()) throw std::logic_error("ValueCounts::mode: empty");
  double best_value = 0.0;
  std::size_t best_count = 0;
  for (const auto& [value, count] : counts_) {
    if (count > best_count) {
      best_count = count;
      best_value = value;
    }
  }
  return best_value;
}

std::vector<double> ValueCounts::samples() const {
  std::vector<double> out;
  out.reserve(total_);
  for (const auto& [value, count] : counts_)
    out.insert(out.end(), count, value);
  return out;
}

DiversityMeasures measure_diversity(const ValueCounts& vc) {
  return DiversityMeasures{vc.simpson_index(), vc.coefficient_of_variation(),
                           vc.richness()};
}

double dependence_measure(const std::map<long, ValueCounts>& groups,
                          DiversityMetric metric) {
  ValueCounts pooled;
  std::size_t total = 0;
  for (const auto& [factor, vc] : groups) {
    for (const auto& [value, count] : vc.counts()) pooled.add(value, count);
    total += vc.total();
  }
  if (total == 0) return 0.0;
  const double pooled_measure = metric == DiversityMetric::kSimpson
                                    ? pooled.simpson_index()
                                    : pooled.coefficient_of_variation();
  if (!std::isfinite(pooled_measure))
    return std::numeric_limits<double>::quiet_NaN();
  double acc = 0.0;
  for (const auto& [factor, vc] : groups) {
    if (vc.empty()) continue;
    const double group_measure = metric == DiversityMetric::kSimpson
                                     ? vc.simpson_index()
                                     : vc.coefficient_of_variation();
    // Groups where the measure is undefined (zero-mean Cv) carry no signal
    // about the factor; skip them rather than poisoning the expectation.
    if (!std::isfinite(group_measure)) continue;
    const double weight =
        static_cast<double>(vc.total()) / static_cast<double>(total);
    acc += weight * std::abs(group_measure - pooled_measure);
  }
  return acc;
}

}  // namespace mmlab::stats
