// Empirical cumulative distribution functions, the workhorse of Figs 6, 10
// and 11: F(x) = fraction of samples <= x.
//
// Thread-safety contract: concurrent const access (at/quantile/min/max/
// series) is safe — the lazy sort behind those accessors commits through a
// lock-free atomic state machine, so many bench threads may read one CDF.
// Mutation (add) requires exclusive access, like any standard container:
// callers must not add() while another thread reads.
#pragma once

#include <atomic>
#include <cstddef>
#include <utility>
#include <vector>

namespace mmlab::stats {

class EmpiricalCdf {
 public:
  EmpiricalCdf() = default;
  /// Sorts eagerly, so a CDF built in one shot is ready for concurrent reads
  /// without ever hitting the lazy-sort path.
  explicit EmpiricalCdf(std::vector<double> samples);

  // std::atomic members are neither copyable nor movable; carry the samples
  // and re-derive the sort state.
  EmpiricalCdf(const EmpiricalCdf& other);
  EmpiricalCdf& operator=(const EmpiricalCdf& other);

  void add(double x);
  /// Fraction of samples <= x, in [0, 1]. Empty CDF returns 0.
  double at(double x) const;
  /// Inverse CDF; q in [0, 1].  Definition: Hyndman-Fan type 7 (the R and
  /// numpy default) — position pos = q*(n-1) on the sorted samples, linear
  /// interpolation between samples[floor(pos)] and samples[floor(pos)+1].
  /// Edge semantics, pinned by the Cdf.Quantile* property tests:
  /// quantile(0) == min(), quantile(1) == max() (pos lands exactly on n-1,
  /// no interpolation or overshoot), and a single-sample CDF returns that
  /// sample for every q.  Empty throws std::logic_error; q outside [0, 1]
  /// throws std::invalid_argument.
  double quantile(double q) const;

  std::size_t size() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  double min() const;
  double max() const;

  /// Evaluate at `points` evenly spaced sample positions across [min, max];
  /// returns (x, F(x)) pairs — the series a CDF plot draws.
  std::vector<std::pair<double, double>> series(std::size_t points = 21) const;

 private:
  enum SortState : int { kDirty = 0, kSorting = 1, kSorted = 2 };

  void ensure_sorted() const;

  mutable std::vector<double> samples_;
  /// Lock-free sorted commit: the first reader to CAS kDirty -> kSorting
  /// sorts and publishes kSorted (release); racing readers spin until they
  /// observe kSorted (acquire) — no mutex, no std::once_flag (which could
  /// not be re-armed by add()).
  mutable std::atomic<int> sort_state_{kSorted};
};

}  // namespace mmlab::stats
