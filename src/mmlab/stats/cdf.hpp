// Empirical cumulative distribution functions, the workhorse of Figs 6, 10
// and 11: F(x) = fraction of samples <= x.
#pragma once

#include <cstddef>
#include <vector>

namespace mmlab::stats {

class EmpiricalCdf {
 public:
  EmpiricalCdf() = default;
  explicit EmpiricalCdf(std::vector<double> samples);

  void add(double x);
  /// Fraction of samples <= x, in [0, 1]. Empty CDF returns 0.
  double at(double x) const;
  /// Inverse CDF; q in [0, 1].
  double quantile(double q) const;

  std::size_t size() const { return sorted_ ? samples_.size() : samples_.size(); }
  bool empty() const { return samples_.empty(); }
  double min() const;
  double max() const;

  /// Evaluate at `points` evenly spaced sample positions across [min, max];
  /// returns (x, F(x)) pairs — the series a CDF plot draws.
  std::vector<std::pair<double, double>> series(std::size_t points = 21) const;

 private:
  void ensure_sorted() const;
  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
};

}  // namespace mmlab::stats
