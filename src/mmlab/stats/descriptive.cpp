#include "mmlab/stats/descriptive.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace mmlab::stats {

namespace {
void require_nonempty(const std::vector<double>& xs, const char* who) {
  if (xs.empty()) throw std::invalid_argument(std::string(who) + ": empty input");
}
}  // namespace

double mean(const std::vector<double>& xs) {
  require_nonempty(xs, "mean");
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double variance(const std::vector<double>& xs) {
  require_nonempty(xs, "variance");
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return acc / static_cast<double>(xs.size());
}

double stddev(const std::vector<double>& xs) { return std::sqrt(variance(xs)); }

double min_of(const std::vector<double>& xs) {
  require_nonempty(xs, "min_of");
  return *std::min_element(xs.begin(), xs.end());
}

double max_of(const std::vector<double>& xs) {
  require_nonempty(xs, "max_of");
  return *std::max_element(xs.begin(), xs.end());
}

double quantile(std::vector<double> xs, double q) {
  require_nonempty(xs, "quantile");
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("quantile: q out of range");
  std::sort(xs.begin(), xs.end());
  const double pos = q * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

Boxplot boxplot(std::vector<double> xs) {
  require_nonempty(xs, "boxplot");
  std::sort(xs.begin(), xs.end());
  Boxplot b;
  b.n = xs.size();
  auto q_sorted = [&](double q) {
    const double pos = q * static_cast<double>(xs.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, xs.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return xs[lo] * (1.0 - frac) + xs[hi] * frac;
  };
  b.q1 = q_sorted(0.25);
  b.median = q_sorted(0.5);
  b.q3 = q_sorted(0.75);
  const double iqr = b.q3 - b.q1;
  const double lo_fence = b.q1 - 1.5 * iqr;
  const double hi_fence = b.q3 + 1.5 * iqr;
  b.whisker_low = xs.back();
  b.whisker_high = xs.front();
  for (double x : xs) {
    if (x >= lo_fence && x < b.whisker_low) b.whisker_low = x;
    if (x <= hi_fence && x > b.whisker_high) b.whisker_high = x;
  }
  return b;
}

}  // namespace mmlab::stats
