// Descriptive statistics over double samples: moments, quantiles, and the
// five-number boxplot summary used by Figs 9, 21 and 22.
#pragma once

#include <cstddef>
#include <vector>

namespace mmlab::stats {

double mean(const std::vector<double>& xs);
/// Population variance (divides by N); matches the paper's Cv definition.
double variance(const std::vector<double>& xs);
double stddev(const std::vector<double>& xs);
double min_of(const std::vector<double>& xs);
double max_of(const std::vector<double>& xs);

/// Linear-interpolation quantile, q in [0, 1]. xs need not be sorted.
double quantile(std::vector<double> xs, double q);

/// Five-number summary with 1.5*IQR whiskers (Tukey boxplot).
struct Boxplot {
  double whisker_low = 0;
  double q1 = 0;
  double median = 0;
  double q3 = 0;
  double whisker_high = 0;
  std::size_t n = 0;
};

Boxplot boxplot(std::vector<double> xs);

}  // namespace mmlab::stats
