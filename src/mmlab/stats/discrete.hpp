// Weighted discrete distribution over an arbitrary value type.
//
// The configuration generator (netgen) is essentially a catalogue of these:
// for each (carrier, parameter) the paper reports a set of observed values
// and their relative abundance; sampling one assigns a cell its value.
#pragma once

#include <initializer_list>
#include <stdexcept>
#include <utility>
#include <vector>

#include "mmlab/util/rng.hpp"

namespace mmlab::stats {

template <typename T>
class Discrete {
 public:
  Discrete() = default;
  Discrete(std::initializer_list<std::pair<T, double>> entries) {
    for (auto& [v, w] : entries) add(v, w);
  }

  void add(T value, double weight) {
    if (weight < 0.0) throw std::invalid_argument("Discrete: negative weight");
    values_.push_back(std::move(value));
    weights_.push_back(weight);
  }

  bool empty() const { return values_.empty(); }
  std::size_t size() const { return values_.size(); }
  const std::vector<T>& values() const { return values_; }
  const std::vector<double>& weights() const { return weights_; }

  /// Single-valued distribution (weight 1 on `value`).
  static Discrete fixed(T value) {
    Discrete d;
    d.add(std::move(value), 1.0);
    return d;
  }

  const T& sample(Rng& rng) const {
    if (values_.empty()) throw std::logic_error("Discrete::sample: empty");
    if (values_.size() == 1) return values_.front();
    return values_[rng.weighted(weights_)];
  }

 private:
  std::vector<T> values_;
  std::vector<double> weights_;
};

}  // namespace mmlab::stats
